package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// DefaultFlightCapacity bounds the flight recorder ring when the caller
// does not choose a size.
const DefaultFlightCapacity = 256

// FlightEvent is one recorded structured event. Attrs flattens the
// slog attribute set (group-qualified keys joined with '.').
type FlightEvent struct {
	Seq   uint64         `json:"seq"`
	Time  time.Time      `json:"time"`
	Level string         `json:"level"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Recorder is the always-on flight recorder: a bounded ring of recent
// structured events for post-hoc incident debugging. It implements
// slog.Handler, so fanning a logger out to (console handler, recorder)
// keeps recording admissions, rejections, cancellations and state
// transitions even when the console -log-level filters them — the ring
// is what /debug/flight and the SIGQUIT dump render after the fact.
//
// Recording one event is one mutex-guarded ring store; events past the
// capacity overwrite the oldest. Seq is monotone, so a dump makes drops
// visible (first event's Seq > 1 means older events were evicted).
type Recorder struct {
	min slog.Level

	mu      sync.Mutex
	buf     []FlightEvent
	next    int    // ring write cursor
	total   uint64 // events ever recorded (= last Seq)
	dropped uint64 // events evicted by the ring (total - retained)
}

// NewRecorder builds a recorder retaining the last capacity events
// (<= 0 = DefaultFlightCapacity) at slog.LevelInfo and above.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Recorder{min: slog.LevelInfo, buf: make([]FlightEvent, 0, capacity)}
}

// SetMinLevel adjusts the recording threshold (default Info). Call
// before the recorder receives traffic.
func (rec *Recorder) SetMinLevel(lv slog.Level) { rec.min = lv }

// Record appends one event directly (non-slog callers).
func (rec *Recorder) Record(lv slog.Level, msg string, attrs ...slog.Attr) {
	if lv < rec.min {
		return
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		flattenAttr(m, "", a)
	}
	rec.push(FlightEvent{Time: time.Now(), Level: lv.String(), Msg: msg, Attrs: m})
}

func (rec *Recorder) push(ev FlightEvent) {
	rec.mu.Lock()
	rec.total++
	ev.Seq = rec.total
	if len(rec.buf) < cap(rec.buf) {
		rec.buf = append(rec.buf, ev)
	} else {
		rec.buf[rec.next] = ev
		rec.next = (rec.next + 1) % cap(rec.buf)
		rec.dropped++
	}
	rec.mu.Unlock()
}

// Events snapshots the ring, oldest first.
func (rec *Recorder) Events() []FlightEvent {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]FlightEvent, 0, len(rec.buf))
	out = append(out, rec.buf[rec.next:]...)
	out = append(out, rec.buf[:rec.next]...)
	return out
}

// Total reports how many events were ever recorded (evicted included).
func (rec *Recorder) Total() uint64 {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.total
}

// Dropped reports how many recorded events the ring has evicted — the
// explicit counter behind telemetry_flight_dropped_total (always equals
// Total minus retained events; previously only inferable from Seq gaps).
func (rec *Recorder) Dropped() uint64 {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.dropped
}

// FlightDump is the /debug/flight JSON document.
type FlightDump struct {
	Capacity int           `json:"capacity"`
	Total    uint64        `json:"total"`   // events ever recorded
	Dropped  uint64        `json:"dropped"` // events evicted from the ring
	Events   []FlightEvent `json:"events"`
}

// WriteJSON renders the dump document.
func (rec *Recorder) WriteJSON(w io.Writer) error {
	dump := FlightDump{Capacity: cap(rec.buf), Total: rec.Total(), Dropped: rec.Dropped(), Events: rec.Events()}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// WriteText renders a human-readable dump, one event per line — the
// SIGQUIT incident format.
func (rec *Recorder) WriteText(w io.Writer) {
	evs := rec.Events()
	fmt.Fprintf(w, "flight recorder: %d retained of %d recorded events (%d dropped)\n",
		len(evs), rec.Total(), rec.Dropped())
	for _, ev := range evs {
		fmt.Fprintf(w, "  #%-6d %s %-5s %s", ev.Seq, ev.Time.Format("15:04:05.000"), ev.Level, ev.Msg)
		if len(ev.Attrs) > 0 {
			// json.Marshal sorts map keys: deterministic rendering.
			if b, err := json.Marshal(ev.Attrs); err == nil {
				fmt.Fprintf(w, " %s", b)
			}
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// slog.Handler implementation

// Enabled implements slog.Handler.
func (rec *Recorder) Enabled(_ context.Context, lv slog.Level) bool { return lv >= rec.min }

// Handle implements slog.Handler.
func (rec *Recorder) Handle(ctx context.Context, r slog.Record) error {
	return (&recHandler{rec: rec}).Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (rec *Recorder) WithAttrs(attrs []slog.Attr) slog.Handler {
	return (&recHandler{rec: rec}).WithAttrs(attrs)
}

// WithGroup implements slog.Handler.
func (rec *Recorder) WithGroup(name string) slog.Handler {
	return (&recHandler{rec: rec}).WithGroup(name)
}

// recHandler is a derived handler carrying WithAttrs/WithGroup state;
// all derivations share the parent ring.
type recHandler struct {
	rec    *Recorder
	attrs  []slog.Attr // pre-bound attrs, keys already group-qualified
	prefix string      // open group prefix ("a.b.")
}

func (h *recHandler) Enabled(_ context.Context, lv slog.Level) bool { return lv >= h.rec.min }

func (h *recHandler) Handle(_ context.Context, r slog.Record) error {
	m := make(map[string]any, len(h.attrs)+r.NumAttrs())
	for _, a := range h.attrs {
		flattenAttr(m, "", a) // keys pre-qualified at bind time
	}
	r.Attrs(func(a slog.Attr) bool {
		flattenAttr(m, h.prefix, a)
		return true
	})
	h.rec.push(FlightEvent{Time: r.Time, Level: r.Level.String(), Msg: r.Message, Attrs: m})
	return nil
}

func (h *recHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := &recHandler{rec: h.rec, prefix: h.prefix}
	out.attrs = append(append([]slog.Attr{}, h.attrs...), qualify(h.prefix, attrs)...)
	return out
}

func (h *recHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &recHandler{rec: h.rec, attrs: h.attrs, prefix: h.prefix + name + "."}
}

// qualify prefixes bound attr keys with the open group path.
func qualify(prefix string, attrs []slog.Attr) []slog.Attr {
	if prefix == "" {
		return attrs
	}
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = slog.Attr{Key: prefix + a.Key, Value: a.Value}
	}
	return out
}

// flattenAttr resolves one attribute into the flat map, expanding
// groups into dot-joined keys.
func flattenAttr(m map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p = prefix + a.Key + "."
		}
		for _, ga := range v.Group() {
			flattenAttr(m, p, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	m[prefix+a.Key] = v.Any()
}
