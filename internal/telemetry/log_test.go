package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "INFO": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json handler output does not decode: %v (%q)", err, buf.String())
	}
	if doc["msg"] != "hello" || doc["k"] != "v" {
		t.Errorf("json log = %v", doc)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("filtered")
	if buf.Len() != 0 {
		t.Errorf("info event leaked past -log-level warn: %q", buf.String())
	}
	log.Warn("kept")
	if buf.Len() == 0 {
		t.Error("warn event missing at -log-level warn")
	}

	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("NewLogger accepted an unknown level")
	}
}

func TestNopLoggerDisabled(t *testing.T) {
	log := Nop()
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("Nop logger reports Error enabled")
	}
	log.Error("goes nowhere") // must not panic
}

func TestRequestIDs(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !re.MatchString(id) {
			t.Fatalf("request id %q is not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}

	ctx := WithRequestID(context.Background(), "deadbeef00000000")
	if got := RequestIDFrom(ctx); got != "deadbeef00000000" {
		t.Errorf("RequestIDFrom = %q", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("RequestIDFrom(empty ctx) = %q, want empty", got)
	}
}
