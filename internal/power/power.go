// Package power implements the energy and area model standing in for
// McPAT + CACTI (§VI): event-based dynamic energy accounting over the
// pipeline's activity counters plus per-cycle leakage, and a structure-area
// model used to recompute the paper's 1.5 % area / 0.62 % peak-power
// overhead claims for the SCC additions (§VII-B).
//
// Absolute joules are not the point (the constants are McPAT-class
// estimates for a 10 nm-ish core at 2.4 GHz); the figures only ever use
// energy ratios between configurations, which depend on relative event
// counts the simulator measures exactly.
package power

import "sccsim/internal/pipeline"

// EnergyParams holds per-event dynamic energies in picojoules and static
// power in watts.
type EnergyParams struct {
	// Front end.
	ICacheAccessPJ  float64 // per line fetch
	DecodePJ        float64 // per macro-op decoded
	UopCacheReadPJ  float64 // per fused slot streamed
	UopCacheWritePJ float64 // per fused slot filled
	BPLookupPJ      float64
	VPLookupPJ      float64
	VPTrainPJ       float64
	RenamePJ        float64 // per uop renamed (map table + free list)
	LiveOutInlinePJ float64 // physical-register-inlining map write

	// SCC unit.
	SCCALUPJ      float64
	SCCRCTPJ      float64 // per RCT read/write
	SCCProbePJ    float64 // extra (doubled-port) predictor probe
	SCCBufWritePJ float64 // write-buffer slot write

	// Back end.
	IssuePJ  float64 // per uop through the scheduler
	IntOpPJ  float64
	MulDivPJ float64
	FPOpPJ   float64
	ROBPJ    float64 // per uop ROB write+commit
	LSQPJ    float64 // per memory uop

	// Memory hierarchy.
	L1DPJ  float64
	L2PJ   float64
	L3PJ   float64
	DRAMPJ float64

	// Static power (whole chip) in watts, and clock frequency in GHz.
	LeakageWatts float64
	FreqGHz      float64
}

// DefaultParams returns McPAT-class constants for the Table I core.
func DefaultParams() EnergyParams {
	return EnergyParams{
		ICacheAccessPJ:  45,
		DecodePJ:        9,
		UopCacheReadPJ:  2.2,
		UopCacheWritePJ: 3.0,
		BPLookupPJ:      2.5,
		VPLookupPJ:      2.8,
		VPTrainPJ:       2.8,
		RenamePJ:        3.5,
		LiveOutInlinePJ: 1.2,

		SCCALUPJ:      1.1,
		SCCRCTPJ:      0.6,
		SCCProbePJ:    2.8,
		SCCBufWritePJ: 1.0,

		IssuePJ:  4.5,
		IntOpPJ:  1.8,
		MulDivPJ: 9.0,
		FPOpPJ:   7.5,
		ROBPJ:    2.6,
		LSQPJ:    3.2,

		L1DPJ:  22,
		L2PJ:   95,
		L3PJ:   310,
		DRAMPJ: 4600,

		LeakageWatts: 1.9,
		FreqGHz:      2.4,
	}
}

// CacheCounts carries the hierarchy access counts the report needs
// (decoupled from the cache package to keep this package model-only).
type CacheCounts struct {
	L1D, L2, L3, DRAM uint64
}

// Report is the per-run energy breakdown in joules.
type Report struct {
	FrontEnd float64
	SCCUnit  float64
	BackEnd  float64
	Memory   float64
	Leakage  float64
}

// Total returns the whole-chip energy in joules.
func (r Report) Total() float64 {
	return r.FrontEnd + r.SCCUnit + r.BackEnd + r.Memory + r.Leakage
}

// Energy computes the energy report from pipeline stats and hierarchy
// counts.
func Energy(p EnergyParams, st *pipeline.Stats, mem CacheCounts) Report {
	pj := func(n uint64, e float64) float64 { return float64(n) * e * 1e-12 }
	var r Report

	r.FrontEnd = pj(st.ICacheFetches, p.ICacheAccessPJ) +
		pj(st.DecodedUops, p.DecodePJ) +
		pj(st.UopsFromUnopt+st.UopsFromOpt, p.UopCacheReadPJ) +
		pj(st.UopsFromDecode, p.UopCacheWritePJ) + // decode path fills lines
		pj(st.BPLookups, p.BPLookupPJ) +
		pj(st.VPLookups+st.VPTrains, p.VPLookupPJ) +
		pj(st.RenamedUops, p.RenamePJ) +
		pj(st.LiveOutsInlined, p.LiveOutInlinePJ)

	r.SCCUnit = pj(st.SCCALUOps, p.SCCALUPJ) +
		pj(st.SCCRCTReads+st.SCCRCTWrites, p.SCCRCTPJ) +
		pj(st.SCCVPProbes+st.SCCBPProbes, p.SCCProbePJ) +
		pj(st.SCCUopsWritten, p.SCCBufWritePJ)

	r.BackEnd = pj(st.IssuedUops, p.IssuePJ) +
		pj(st.IntOps, p.IntOpPJ) +
		pj(st.MulDivOps, p.MulDivPJ) +
		pj(st.FPOps, p.FPOpPJ) +
		pj(st.RenamedUops, p.ROBPJ) +
		pj(st.Loads+st.Stores, p.LSQPJ)

	r.Memory = pj(mem.L1D, p.L1DPJ) + pj(mem.L2, p.L2PJ) +
		pj(mem.L3, p.L3PJ) + pj(mem.DRAM, p.DRAMPJ)

	seconds := float64(st.Cycles) / (p.FreqGHz * 1e9)
	r.Leakage = p.LeakageWatts * seconds
	return r
}

// ---------------------------------------------------------------------------
// Area model.

// AreaParams lists core structure areas in mm^2 (10 nm-class estimates;
// only the SCC-to-core ratio matters).
type AreaParams struct {
	CoreLogic  float64 // fetch/decode/rename/execute/commit logic
	L1Caches   float64
	L2Slice    float64
	UopCache   float64
	Predictors float64 // branch + value predictors
	// SCC additions (§III): front-end ALU, register context table,
	// request queue, write buffer, extended tag arrays, doubled predictor
	// read ports.
	SCCALU        float64
	SCCRCT        float64
	SCCQueues     float64
	SCCTagExt     float64
	SCCExtraPorts float64
}

// DefaultAreaParams returns the default structure areas.
func DefaultAreaParams() AreaParams {
	return AreaParams{
		CoreLogic:  6.3,
		L1Caches:   1.9,
		L2Slice:    1.6,
		UopCache:   0.55,
		Predictors: 0.50,

		SCCALU:        0.012,
		SCCRCT:        0.009,
		SCCQueues:     0.026,
		SCCTagExt:     0.055,
		SCCExtraPorts: 0.060,
	}
}

// CoreArea returns the baseline core area in mm^2.
func (a AreaParams) CoreArea() float64 {
	return a.CoreLogic + a.L1Caches + a.L2Slice + a.UopCache + a.Predictors
}

// SCCArea returns the area of the SCC additions in mm^2.
func (a AreaParams) SCCArea() float64 {
	return a.SCCALU + a.SCCRCT + a.SCCQueues + a.SCCTagExt + a.SCCExtraPorts
}

// SCCAreaOverhead returns the fractional area overhead of SCC
// (the paper reports 1.5 %).
func (a AreaParams) SCCAreaOverhead() float64 { return a.SCCArea() / a.CoreArea() }

// SCCPeakPowerOverhead returns the fractional peak-power overhead of the
// SCC additions (the paper reports 0.62 %, dominated by the doubled
// predictor read ports as modeled in CACTI).
func SCCPeakPowerOverhead(p EnergyParams) float64 {
	// Peak per-cycle dynamic energy of the baseline chip at full issue,
	// plus the leakage contribution per cycle (peak power is a whole-chip
	// figure in the paper).
	dynamic := p.ICacheAccessPJ/8 + p.DecodePJ*1 + p.UopCacheReadPJ*6 +
		p.BPLookupPJ + p.VPLookupPJ + p.RenamePJ*5 +
		p.IssuePJ*8 + p.IntOpPJ*4 + p.FPOpPJ*2 + p.ROBPJ*8 + p.LSQPJ*3 +
		p.L1DPJ*2 + p.L2PJ/8 + p.L3PJ/64
	leakPJPerCycle := p.LeakageWatts / (p.FreqGHz * 1e9) * 1e12
	// SCC's additions per cycle: the front-end ALU, three RCT ports, the
	// incremental cost of the doubled predictor read ports (CACTI models
	// a second port as a fraction of a full lookup), and the write buffer.
	portIncrement := 0.35 * p.SCCProbePJ
	sccExtra := p.SCCALUPJ + p.SCCRCTPJ*3 + portIncrement*2 + p.SCCBufWritePJ
	return sccExtra / (dynamic + leakPJPerCycle)
}
