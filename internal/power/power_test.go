package power

import (
	"math"
	"testing"

	"sccsim/internal/pipeline"
)

func TestEnergyZeroStats(t *testing.T) {
	r := Energy(DefaultParams(), &pipeline.Stats{}, CacheCounts{})
	if r.Total() != 0 {
		t.Errorf("zero activity should cost zero energy, got %v", r.Total())
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	p := DefaultParams()
	st1 := &pipeline.Stats{IssuedUops: 1000, RenamedUops: 1000, Cycles: 1000}
	st2 := &pipeline.Stats{IssuedUops: 2000, RenamedUops: 2000, Cycles: 2000}
	r1 := Energy(p, st1, CacheCounts{})
	r2 := Energy(p, st2, CacheCounts{})
	if math.Abs(r2.Total()-2*r1.Total()) > 1e-15 {
		t.Errorf("energy must scale linearly: %v vs %v", r1.Total(), r2.Total())
	}
}

func TestLeakageProportionalToCycles(t *testing.T) {
	p := DefaultParams()
	st := &pipeline.Stats{Cycles: 2_400_000_000} // one second at 2.4 GHz
	r := Energy(p, st, CacheCounts{})
	if math.Abs(r.Leakage-p.LeakageWatts) > 1e-9 {
		t.Errorf("leakage over 1s = %v J, want %v", r.Leakage, p.LeakageWatts)
	}
}

func TestMemoryEnergyDominatedByDRAM(t *testing.T) {
	p := DefaultParams()
	st := &pipeline.Stats{}
	rDram := Energy(p, st, CacheCounts{DRAM: 100})
	rL1 := Energy(p, st, CacheCounts{L1D: 100})
	if rDram.Memory <= 10*rL1.Memory {
		t.Error("DRAM accesses must cost far more than L1 hits")
	}
}

func TestFewerUopsMeansLessEnergy(t *testing.T) {
	// The core SCC energy story: a run that commits fewer uops through
	// the back end burns less energy, even after paying for the unit.
	p := DefaultParams()
	baseline := &pipeline.Stats{
		Cycles: 10000, IssuedUops: 10000, RenamedUops: 10000,
		IntOps: 7000, Loads: 2000, Stores: 1000,
		UopsFromUnopt: 10000, BPLookups: 1500, VPTrains: 8000,
	}
	sccRun := &pipeline.Stats{
		Cycles: 9300, IssuedUops: 8000, RenamedUops: 8000,
		IntOps: 5400, Loads: 2000, Stores: 1000,
		UopsFromOpt: 8000, BPLookups: 900, VPTrains: 6500,
		SCCALUOps: 300, SCCRCTReads: 900, SCCRCTWrites: 400,
		SCCVPProbes: 500, SCCBPProbes: 120, SCCUopsWritten: 600,
		LiveOutsInlined: 800,
	}
	mem := CacheCounts{L1D: 3000, L2: 200, L3: 40, DRAM: 5}
	rb := Energy(p, baseline, mem)
	rs := Energy(p, sccRun, mem)
	if rs.Total() >= rb.Total() {
		t.Errorf("SCC run should save energy: %v vs %v J", rs.Total(), rb.Total())
	}
	if rs.SCCUnit <= 0 {
		t.Error("SCC unit energy must be charged")
	}
}

func TestAreaOverheadMatchesPaperBand(t *testing.T) {
	a := DefaultAreaParams()
	ov := a.SCCAreaOverhead()
	// The paper reports 1.5 %; the model must land in a tight band.
	if ov < 0.012 || ov > 0.018 {
		t.Errorf("SCC area overhead = %.2f%%, want ~1.5%%", ov*100)
	}
}

func TestPeakPowerOverheadMatchesPaperBand(t *testing.T) {
	ov := SCCPeakPowerOverhead(DefaultParams())
	// The paper reports 0.62 %.
	if ov < 0.004 || ov > 0.009 {
		t.Errorf("SCC peak power overhead = %.2f%%, want ~0.62%%", ov*100)
	}
}

func TestReportBreakdownSums(t *testing.T) {
	r := Report{FrontEnd: 1, SCCUnit: 2, BackEnd: 3, Memory: 4, Leakage: 5}
	if r.Total() != 15 {
		t.Errorf("Total = %v", r.Total())
	}
}
