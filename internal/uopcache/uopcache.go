// Package uopcache implements the micro-op cache and the paper's extensions
// to it: separate unoptimized and optimized partitions that co-host multiple
// versions of micro-op sequences, hotness counters with periodic decay, lock
// bits for lines under compaction, an extended tag array holding 4-bit
// saturating confidence counters per predicted invariant, and the
// profitability scoring the fetch engine uses to select a stream (§III, §V).
//
// Geometry follows the Icelake-like baseline (Table I): 8-way sets of lines
// holding up to 6 fused micro-ops each; one 32-byte code region may span at
// most 3 ways (18 fused micro-ops). Lines are keyed by their entry PC, the
// address of the first macro-op fetched into the line.
package uopcache

import (
	"fmt"

	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

// UopsPerWay is the number of fused micro-op slots per cache way.
const UopsPerWay = 6

// MaxWaysPerRegion bounds how many ways one 32-byte region may occupy.
const MaxWaysPerRegion = 3

// MaxLineSlots is the largest fused-slot count a single line (spanning up
// to three ways) can hold — the paper's 18 fused micro-ops.
const MaxLineSlots = UopsPerWay * MaxWaysPerRegion

// ConfMax is the top of the 4-bit saturating invariant confidence range.
const ConfMax = 15

// DataInvariant records one speculatively identified data invariant: the
// predicted output value of the prediction-source micro-op at PC/Key.
type DataInvariant struct {
	Key   uint64 // value-predictor key of the prediction source
	PC    uint64 // macro PC of the prediction source
	Value int64  // predicted (invariant) value
	Conf  int    // 4-bit saturating confidence
	// Occ is the dynamic occurrence ordinal of Key within the compacted
	// stream's original walk: a wrapped loop body revisits the same
	// static micro-op, and each visit validates against its own
	// invariant.
	Occ int
	// ConfAtPlant is the predictor confidence observed when the invariant
	// was planted, frozen for squash forensics (Conf itself moves with
	// Reward/Penalize).
	ConfAtPlant int
	// SrcKind is the uop.Kind code of the prediction-source micro-op
	// (load vs ALU vs FP — which instruction class the invariant covers).
	SrcKind uint8
}

// CtrlInvariant records one speculatively identified control invariant:
// the predicted direction/target of an unfoldable branch in the stream.
type CtrlInvariant struct {
	PC     uint64
	Taken  bool
	Target uint64
	Conf   int
	// ConfAtPlant freezes the branch-predictor confidence observed at
	// planting time (squash forensics; Conf moves with Reward/Penalize).
	ConfAtPlant int
}

// LiveOut is a register value produced by an eliminated micro-op that must
// be materialized at rename time (inlined constants, §IV).
type LiveOut struct {
	Reg   isa.Reg
	Value int64
}

// CompactMeta is the extended tag-array metadata attached to lines in the
// optimized partition.
type CompactMeta struct {
	DataInv  []DataInvariant
	CtrlInv  []CtrlInvariant
	LiveOuts []LiveOut
	// OrigSlots is the fused-slot count of the unoptimized sequence this
	// line was compacted from; Shrinkage = OrigSlots - line slots is the
	// compaction potential used in profitability scoring.
	OrigSlots int
	// OrigUops is the micro-op count (not slots) of the original walked
	// sequence; the pipeline advances the functional oracle by exactly
	// this many micro-ops when streaming the line.
	OrigUops int
	// Per-category elimination counts for dynamic attribution
	// (Figure 6's per-optimization breakdown).
	ElimMove   int
	ElimFold   int
	ElimBranch int
	ElimDead   int
	Propagated int
	// EndPC is the fall-through macro PC after the last uop of the
	// original (uncompacted) sequence, where fetch resumes.
	EndPC uint64
	// Squashes counts invariant-violation squashes charged to this line.
	Squashes uint64
	// Streams counts times this line was selected for streaming.
	Streams uint64
	// JobID identifies the compaction job that minted this line (stamped
	// by the SCC unit) — the attribution key the optimization journal
	// uses to tie streaming verdicts and squashes back to the planting
	// job's remarks.
	JobID uint64
}

// Shrinkage returns the compaction potential in fused slots.
func (m *CompactMeta) Shrinkage(lineSlots int) int { return m.OrigSlots - lineSlots }

// SumConf returns the sum of all invariant confidence counters
// (the first term of the profitability score, §III).
func (m *CompactMeta) SumConf() int {
	s := 0
	for i := range m.DataInv {
		s += m.DataInv[i].Conf
	}
	for i := range m.CtrlInv {
		s += m.CtrlInv[i].Conf
	}
	return s
}

// MinConf returns the smallest invariant confidence (what the streaming
// threshold is checked against).
func (m *CompactMeta) MinConf() int {
	mn := ConfMax
	for i := range m.DataInv {
		if m.DataInv[i].Conf < mn {
			mn = m.DataInv[i].Conf
		}
	}
	for i := range m.CtrlInv {
		if m.CtrlInv[i].Conf < mn {
			mn = m.CtrlInv[i].Conf
		}
	}
	return mn
}

// Reward bumps every invariant confidence after a fully validated stream.
func (m *CompactMeta) Reward() {
	for i := range m.DataInv {
		if m.DataInv[i].Conf < ConfMax {
			m.DataInv[i].Conf++
		}
	}
	for i := range m.CtrlInv {
		if m.CtrlInv[i].Conf < ConfMax {
			m.CtrlInv[i].Conf++
		}
	}
}

// Penalize decays invariant confidences after a squash; the offending
// invariant (by index, data first then control) is hit hardest.
func (m *CompactMeta) Penalize(offender int) {
	dec := func(c int, by int) int {
		c -= by
		if c < 0 {
			return 0
		}
		return c
	}
	idx := 0
	for i := range m.DataInv {
		if idx == offender {
			m.DataInv[i].Conf = dec(m.DataInv[i].Conf, 6)
		} else {
			m.DataInv[i].Conf = dec(m.DataInv[i].Conf, 1)
		}
		idx++
	}
	for i := range m.CtrlInv {
		if idx == offender {
			m.CtrlInv[i].Conf = dec(m.CtrlInv[i].Conf, 6)
		} else {
			m.CtrlInv[i].Conf = dec(m.CtrlInv[i].Conf, 1)
		}
		idx++
	}
	m.Squashes++
}

// Line is one micro-op cache line (possibly spanning multiple ways).
// Meta is nil for unoptimized lines.
type Line struct {
	EntryPC uint64
	Uops    []uop.UOp
	Slots   int // fused slots
	Ways    int // way-slots consumed: ceil(Slots/UopsPerWay)
	Hot     int // hotness counter (incremented on access, decayed periodically)
	Locked  bool
	Meta    *CompactMeta

	lastTouch uint64
}

// NewLine builds a line from a uop stream, computing slot and way counts.
func NewLine(entryPC uint64, uops []uop.UOp, meta *CompactMeta) *Line {
	slots := uop.SlotCount(uops)
	ways := (slots + UopsPerWay - 1) / UopsPerWay
	if ways == 0 {
		ways = 1
	}
	return &Line{EntryPC: entryPC, Uops: uops, Slots: slots, Ways: ways, Meta: meta}
}

// String summarizes the line for debug output.
func (l *Line) String() string {
	kind := "unopt"
	if l.Meta != nil {
		kind = fmt.Sprintf("opt(shrink=%d,conf=%d)", l.Meta.Shrinkage(l.Slots), l.Meta.SumConf())
	}
	return fmt.Sprintf("line@%#x %s slots=%d ways=%d hot=%d", l.EntryPC, kind, l.Slots, l.Ways, l.Hot)
}

// Stats counts partition activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64
	SlotsRead  uint64
}

// Partition is one micro-op cache partition.
type Partition struct {
	NumSets int
	Ways    int
	// DecayPeriod is the hotness-decay interval in cycles (§III: 3 for the
	// optimized partition, 28 for the unoptimized one).
	DecayPeriod int

	sets     [][]*Line
	touch    uint64
	decayAcc int
	Stats    Stats
}

// NewPartition builds a partition with numSets sets of ways way-slots.
func NewPartition(numSets, ways, decayPeriod int) *Partition {
	p := &Partition{NumSets: numSets, Ways: ways, DecayPeriod: decayPeriod}
	p.sets = make([][]*Line, numSets)
	return p
}

// CapacityUops returns the partition's capacity in fused micro-op slots.
func (p *Partition) CapacityUops() int { return p.NumSets * p.Ways * UopsPerWay }

func (p *Partition) setIndex(pc uint64) int {
	return int((pc >> 5) % uint64(p.NumSets))
}

// Lookup returns the first line whose entry PC matches, updating hotness
// and hit/miss stats.
func (p *Partition) Lookup(pc uint64) *Line {
	set := p.sets[p.setIndex(pc)]
	for _, l := range set {
		if l.EntryPC == pc {
			p.touch++
			l.lastTouch = p.touch
			l.Hot++
			p.Stats.Hits++
			p.Stats.SlotsRead += uint64(l.Slots)
			return l
		}
	}
	p.Stats.Misses++
	return nil
}

// LookupAll returns every line with the given entry PC (the optimized
// partition may co-host multiple compacted versions). Hotness is bumped on
// each; a single hit/miss is counted.
func (p *Partition) LookupAll(pc uint64, dst []*Line) []*Line {
	set := p.sets[p.setIndex(pc)]
	for _, l := range set {
		if l.EntryPC == pc {
			p.touch++
			l.lastTouch = p.touch
			l.Hot++
			dst = append(dst, l)
		}
	}
	if len(dst) > 0 {
		p.Stats.Hits++
	} else {
		p.Stats.Misses++
	}
	return dst
}

// RegionResident reports whether any line from the 32-byte code region
// containing pc is resident — the SCC unit's residency check (compaction
// stops on a micro-op cache miss, §III). Stat-free.
func (p *Partition) RegionResident(pc uint64) bool {
	region := pc &^ 31
	for _, l := range p.sets[p.setIndex(pc)] {
		if l.EntryPC&^31 == region {
			return true
		}
	}
	return false
}

// Peek finds a line without perturbing hotness or stats (SCC unit reads).
func (p *Partition) Peek(pc uint64) *Line {
	for _, l := range p.sets[p.setIndex(pc)] {
		if l.EntryPC == pc {
			return l
		}
	}
	return nil
}

func (p *Partition) usedWays(set []*Line) int {
	n := 0
	for _, l := range set {
		n += l.Ways
	}
	return n
}

// Insert places a line, evicting least-recently-touched unlocked lines as
// needed. It returns false (and does not insert) when locked lines prevent
// making room or the line is too large for the associativity.
func (p *Partition) Insert(l *Line) bool {
	if l.Ways > p.Ways {
		return false
	}
	si := p.setIndex(l.EntryPC)
	set := p.sets[si]
	// Replace any existing identical-entry line of the same kind
	// (unopt refresh) to avoid duplicates; optimized versions co-exist
	// unless they have identical invariants.
	for i, old := range set {
		if old.EntryPC == l.EntryPC && sameVersion(old, l) && !old.Locked {
			set = append(set[:i], set[i+1:]...)
			p.Stats.Evictions++
			break
		}
	}
	for p.usedWays(set)+l.Ways > p.Ways {
		victim := -1
		var oldest uint64 = ^uint64(0)
		for i, cand := range set {
			if cand.Locked {
				continue
			}
			if cand.lastTouch <= oldest {
				oldest = cand.lastTouch
				victim = i
			}
		}
		if victim < 0 {
			p.sets[si] = set
			return false
		}
		set = append(set[:victim], set[victim+1:]...)
		p.Stats.Evictions++
	}
	p.touch++
	l.lastTouch = p.touch
	set = append(set, l)
	p.sets[si] = set
	p.Stats.Insertions++
	return true
}

// sameVersion reports whether two lines are the same logical version:
// both unoptimized, or optimized with identical invariant sets.
func sameVersion(a, b *Line) bool {
	if (a.Meta == nil) != (b.Meta == nil) {
		return false
	}
	if a.Meta == nil {
		return true
	}
	if len(a.Meta.DataInv) != len(b.Meta.DataInv) || len(a.Meta.CtrlInv) != len(b.Meta.CtrlInv) {
		return false
	}
	for i := range a.Meta.DataInv {
		if a.Meta.DataInv[i].Key != b.Meta.DataInv[i].Key ||
			a.Meta.DataInv[i].Value != b.Meta.DataInv[i].Value {
			return false
		}
	}
	for i := range a.Meta.CtrlInv {
		if a.Meta.CtrlInv[i].PC != b.Meta.CtrlInv[i].PC ||
			a.Meta.CtrlInv[i].Taken != b.Meta.CtrlInv[i].Taken {
			return false
		}
	}
	return true
}

// Remove drops a specific line (stale-stream phase-out).
func (p *Partition) Remove(target *Line) bool {
	si := p.setIndex(target.EntryPC)
	set := p.sets[si]
	for i, l := range set {
		if l == target {
			p.sets[si] = append(set[:i], set[i+1:]...)
			p.Stats.Evictions++
			return true
		}
	}
	return false
}

// Lock pins a line against eviction while the SCC unit reads it (§III's
// per-line lock bit). At most MaxWaysPerRegion ways may be locked at once;
// Lock reports whether the lock was granted.
func (p *Partition) Lock(l *Line) bool {
	locked := 0
	for _, set := range p.sets {
		for _, x := range set {
			if x.Locked {
				locked += x.Ways
			}
		}
	}
	if locked+l.Ways > MaxWaysPerRegion {
		return false
	}
	l.Locked = true
	return true
}

// Unlock clears a line's lock bit.
func (p *Partition) Unlock(l *Line) { l.Locked = false }

// Tick advances the hotness-decay clock by one cycle, decrementing every
// line's hotness once per DecayPeriod.
func (p *Partition) Tick() {
	if p.DecayPeriod <= 0 {
		return
	}
	p.decayAcc++
	if p.decayAcc < p.DecayPeriod {
		return
	}
	p.decayAcc = 0
	for _, set := range p.sets {
		for _, l := range set {
			if l.Hot > 0 {
				l.Hot--
			}
		}
	}
}

// Lines returns all resident lines (test/diagnostic use).
func (p *Partition) Lines() []*Line {
	var out []*Line
	for _, set := range p.sets {
		out = append(out, set...)
	}
	return out
}

// Config sizes the two-partition micro-op cache.
type Config struct {
	UnoptSets, UnoptWays int
	OptSets, OptWays     int
	UnoptDecay, OptDecay int // hotness decay periods in cycles
	// HotThreshold is the line hotness at which a compaction request is
	// enqueued (§III).
	HotThreshold int
	// StreamConfThreshold is the minimum per-invariant confidence for an
	// optimized line to be streamed (§V).
	StreamConfThreshold int
	// StreamHotThreshold is the minimum hotness for an optimized line to
	// be streamed.
	StreamHotThreshold int
	// MinShrinkage is the compaction potential floor for committing and
	// streaming an optimized line.
	MinShrinkage int
	// SquashGate phases out misbehaving streams (§V: streams whose
	// mispredictions cross a dynamically identified threshold are
	// penalized and eventually phased out): a line with at least two
	// squashes stops streaming once squashes*SquashGate > streams,
	// i.e. its violation rate exceeds 1/SquashGate. 0 disables the gate
	// (the profitability-analysis ablation).
	SquashGate int
}

// DefaultConfig matches the artifact's SCC run options: a 24-set 8-way
// unoptimized partition plus a 24-set 4-way optimized partition, decay
// periods 28/3 cycles, and a streaming confidence threshold of 5.
func DefaultConfig() Config {
	return Config{
		UnoptSets: 24, UnoptWays: 8,
		OptSets: 24, OptWays: 4,
		UnoptDecay: 28, OptDecay: 3,
		HotThreshold:        4,
		StreamConfThreshold: 5,
		StreamHotThreshold:  1,
		MinShrinkage:        1,
		SquashGate:          20,
	}
}

// BaselineConfig is the unpartitioned Table I micro-op cache
// (48 sets x 8 ways x 6 uops = 2304 micro-ops) with no optimized partition.
func BaselineConfig() Config {
	return Config{
		UnoptSets: 48, UnoptWays: 8,
		OptSets: 0, OptWays: 0,
		UnoptDecay:   28,
		HotThreshold: 4,
	}
}

// UopCache is the two-partition micro-op cache.
type UopCache struct {
	Cfg   Config
	Unopt *Partition
	Opt   *Partition // nil when OptSets == 0
}

// New builds the cache from a configuration.
func New(cfg Config) *UopCache {
	u := &UopCache{Cfg: cfg, Unopt: NewPartition(cfg.UnoptSets, cfg.UnoptWays, cfg.UnoptDecay)}
	if cfg.OptSets > 0 {
		u.Opt = NewPartition(cfg.OptSets, cfg.OptWays, cfg.OptDecay)
	}
	return u
}

// Tick advances both partitions' decay clocks.
func (u *UopCache) Tick() {
	u.Unopt.Tick()
	if u.Opt != nil {
		u.Opt.Tick()
	}
}

// Selection is the fetch engine's streaming decision.
type Selection struct {
	Line    *Line
	FromOpt bool
	// Score is the profitability score of the chosen optimized line
	// (sum of invariant confidences + shrinkage, §III).
	Score int
	// Candidates counts the optimized versions considered for this fetch;
	// GateTrips counts those the squash gate phased out (§V). Both are
	// journal/diagnostic outputs and never feed back into the decision.
	Candidates int
	GateTrips  int
}

// Select implements the profitability analysis unit (§V): both partitions
// are probed with the fetch PC; among optimized candidates that pass the
// confidence, hotness, shrinkage and current-predictor-state checks, the
// highest-scoring line wins; otherwise the unoptimized line is returned.
//
// vpMatches reports whether a stored data invariant still matches the
// current state of the value predictor (nil disables the check).
func (u *UopCache) Select(pc uint64, scratch []*Line, vpMatches func(DataInvariant) bool) (Selection, []*Line) {
	var unopt *Line
	if u.Opt == nil {
		unopt = u.Unopt.Lookup(pc)
		return Selection{Line: unopt}, scratch
	}
	unopt = u.Unopt.Lookup(pc)
	scratch = scratch[:0]
	scratch = u.Opt.LookupAll(pc, scratch)

	var best *Line
	bestScore := -1
	candidates, gateTrips := 0, 0
	for _, cand := range scratch {
		m := cand.Meta
		if m == nil {
			continue
		}
		candidates++
		if m.MinConf() < u.Cfg.StreamConfThreshold {
			continue
		}
		if cand.Hot < u.Cfg.StreamHotThreshold {
			continue
		}
		if m.Shrinkage(cand.Slots) < u.Cfg.MinShrinkage {
			continue
		}
		if u.Cfg.SquashGate > 0 && m.Squashes >= 2 &&
			m.Squashes*uint64(u.Cfg.SquashGate) > m.Streams {
			gateTrips++
			continue // misprediction rate crossed the phase-out threshold
		}
		if vpMatches != nil {
			ok := true
			for i := range m.DataInv {
				if !vpMatches(m.DataInv[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		score := m.SumConf() + m.Shrinkage(cand.Slots)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	if best != nil {
		best.Meta.Streams++
		return Selection{Line: best, FromOpt: true, Score: bestScore,
			Candidates: candidates, GateTrips: gateTrips}, scratch
	}
	return Selection{Line: unopt, Candidates: candidates, GateTrips: gateTrips}, scratch
}
