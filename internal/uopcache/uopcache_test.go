package uopcache

import (
	"testing"

	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

func mkUops(n int, pc uint64) []uop.UOp {
	us := make([]uop.UOp, n)
	for i := range us {
		us[i] = uop.UOp{Kind: uop.KAlu, Fn: isa.FnAdd, Dst: isa.R1, Src1: isa.R1,
			Src2: isa.RegNone, Src2Imm: true, Imm2: 1, MacroPC: pc + uint64(i)*3, MacroLen: 3}
	}
	return us
}

func TestNewLineGeometry(t *testing.T) {
	l := NewLine(0x1000, mkUops(7, 0x1000), nil)
	if l.Slots != 7 || l.Ways != 2 {
		t.Errorf("slots=%d ways=%d, want 7/2", l.Slots, l.Ways)
	}
	l = NewLine(0x1000, mkUops(6, 0x1000), nil)
	if l.Ways != 1 {
		t.Errorf("6 slots should fit 1 way, got %d", l.Ways)
	}
	l = NewLine(0x1000, mkUops(18, 0x1000), nil)
	if l.Ways != MaxWaysPerRegion {
		t.Errorf("18 slots = %d ways", l.Ways)
	}
	// Fused pairs count once.
	us := mkUops(4, 0x1000)
	us[1].FusedWithPrev = true
	l = NewLine(0x1000, us, nil)
	if l.Slots != 3 {
		t.Errorf("fused slots = %d, want 3", l.Slots)
	}
}

func TestPartitionLookupInsert(t *testing.T) {
	p := NewPartition(8, 8, 0)
	if p.Lookup(0x1000) != nil {
		t.Error("empty partition hit")
	}
	l := NewLine(0x1000, mkUops(6, 0x1000), nil)
	if !p.Insert(l) {
		t.Fatal("insert failed")
	}
	got := p.Lookup(0x1000)
	if got != l {
		t.Fatal("lookup after insert failed")
	}
	if got.Hot != 1 {
		t.Errorf("hotness after one access = %d", got.Hot)
	}
	if p.Stats.Hits != 1 || p.Stats.Misses != 1 || p.Stats.Insertions != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestPartitionEvictsLRU(t *testing.T) {
	p := NewPartition(1, 2, 0) // one set, two ways
	a := NewLine(0x1000, mkUops(6, 0x1000), nil)
	b := NewLine(0x2000, mkUops(6, 0x2000), nil)
	p.Insert(a)
	p.Insert(b)
	p.Lookup(0x1000) // make A most recent
	c := NewLine(0x3000, mkUops(6, 0x3000), nil)
	if !p.Insert(c) {
		t.Fatal("insert with eviction failed")
	}
	if p.Peek(0x2000) != nil {
		t.Error("LRU line B should have been evicted")
	}
	if p.Peek(0x1000) == nil {
		t.Error("recently used line A was evicted")
	}
}

func TestPartitionRespectsLocks(t *testing.T) {
	p := NewPartition(1, 2, 0)
	a := NewLine(0x1000, mkUops(6, 0x1000), nil)
	b := NewLine(0x2000, mkUops(6, 0x2000), nil)
	p.Insert(a)
	p.Insert(b)
	if !p.Lock(a) {
		t.Fatal("lock refused")
	}
	p.Lookup(0x2000) // make B most recent; A is LRU but locked
	c := NewLine(0x3000, mkUops(6, 0x3000), nil)
	if !p.Insert(c) {
		t.Fatal("insert should evict the unlocked line")
	}
	if p.Peek(0x1000) == nil {
		t.Error("locked line was evicted")
	}
	if p.Peek(0x2000) != nil {
		t.Error("unlocked line should have been the victim")
	}
	p.Unlock(a)
}

func TestLockCapBoundsWays(t *testing.T) {
	// At most 3 ways (18 fused uops) may be locked at once (§III).
	p := NewPartition(4, 8, 0)
	a := NewLine(0x1000, mkUops(12, 0x1000), nil) // 2 ways
	b := NewLine(0x2000, mkUops(6, 0x2000), nil)  // 1 way
	c := NewLine(0x3000, mkUops(6, 0x3000), nil)  // 1 way
	p.Insert(a)
	p.Insert(b)
	p.Insert(c)
	if !p.Lock(a) || !p.Lock(b) {
		t.Fatal("first 3 ways should lock")
	}
	if p.Lock(c) {
		t.Error("4th locked way must be refused")
	}
	p.Unlock(b)
	if !p.Lock(c) {
		t.Error("after unlock, lock should succeed")
	}
}

func TestInsertTooWideLineFails(t *testing.T) {
	p := NewPartition(4, 2, 0)
	l := NewLine(0x1000, mkUops(18, 0x1000), nil) // 3 ways > 2-way assoc
	if p.Insert(l) {
		t.Error("line wider than associativity must be rejected")
	}
}

func TestAllWaysLockedInsertFails(t *testing.T) {
	p := NewPartition(1, 2, 0)
	a := NewLine(0x1000, mkUops(12, 0x1000), nil) // 2 ways fills the set
	p.Insert(a)
	p.Lock(a)
	b := NewLine(0x2000, mkUops(6, 0x2000), nil)
	if p.Insert(b) {
		t.Error("insert must fail when only locked lines could be evicted")
	}
}

func TestHotnessDecay(t *testing.T) {
	p := NewPartition(4, 8, 3)
	l := NewLine(0x1000, mkUops(6, 0x1000), nil)
	p.Insert(l)
	for i := 0; i < 5; i++ {
		p.Lookup(0x1000)
	}
	if l.Hot != 5 {
		t.Fatalf("hot = %d", l.Hot)
	}
	for i := 0; i < 9; i++ { // 9 cycles at period 3 = 3 decays
		p.Tick()
	}
	if l.Hot != 2 {
		t.Errorf("after decay hot = %d, want 2", l.Hot)
	}
	for i := 0; i < 30; i++ {
		p.Tick()
	}
	if l.Hot != 0 {
		t.Errorf("hotness must floor at 0, got %d", l.Hot)
	}
}

func TestUnoptRefreshReplacesSameEntry(t *testing.T) {
	p := NewPartition(4, 8, 0)
	p.Insert(NewLine(0x1000, mkUops(6, 0x1000), nil))
	p.Insert(NewLine(0x1000, mkUops(5, 0x1000), nil))
	n := 0
	for _, l := range p.Lines() {
		if l.EntryPC == 0x1000 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("duplicate unopt lines for one entry: %d", n)
	}
}

func TestOptPartitionCoHostsVersions(t *testing.T) {
	p := NewPartition(4, 8, 0)
	mA := &CompactMeta{DataInv: []DataInvariant{{Key: 1, Value: 10, Conf: 8}}, OrigSlots: 6}
	mB := &CompactMeta{DataInv: []DataInvariant{{Key: 1, Value: 20, Conf: 8}}, OrigSlots: 6}
	p.Insert(NewLine(0x1000, mkUops(4, 0x1000), mA))
	p.Insert(NewLine(0x1000, mkUops(4, 0x1000), mB))
	var got []*Line
	got = p.LookupAll(0x1000, got)
	if len(got) != 2 {
		t.Errorf("co-hosted versions = %d, want 2", len(got))
	}
	// An identical-invariant re-commit replaces rather than duplicates.
	p.Insert(NewLine(0x1000, mkUops(3, 0x1000), mA))
	got = p.LookupAll(0x1000, got[:0])
	if len(got) != 2 {
		t.Errorf("after identical re-commit, versions = %d, want 2", len(got))
	}
}

func TestCompactMetaConfidenceOps(t *testing.T) {
	m := &CompactMeta{
		DataInv:   []DataInvariant{{Conf: 5}, {Conf: 9}},
		CtrlInv:   []CtrlInvariant{{Conf: 14}},
		OrigSlots: 10,
	}
	if m.SumConf() != 28 || m.MinConf() != 5 {
		t.Errorf("SumConf=%d MinConf=%d", m.SumConf(), m.MinConf())
	}
	m.Reward()
	if m.DataInv[0].Conf != 6 || m.CtrlInv[0].Conf != 15 {
		t.Errorf("after reward: %+v", m)
	}
	m.Reward()
	if m.CtrlInv[0].Conf != 15 {
		t.Error("confidence must saturate at 15")
	}
	m.Penalize(0) // offender = first data invariant
	if m.DataInv[0].Conf != 1 || m.DataInv[1].Conf != 10 || m.CtrlInv[0].Conf != 14 {
		t.Errorf("after penalize: %+v", m)
	}
	for i := 0; i < 10; i++ {
		m.Penalize(0)
	}
	if m.DataInv[0].Conf != 0 {
		t.Error("confidence must floor at 0")
	}
	if m.Squashes != 11 {
		t.Errorf("squash count = %d", m.Squashes)
	}
}

func TestShrinkage(t *testing.T) {
	m := &CompactMeta{OrigSlots: 10}
	if m.Shrinkage(6) != 4 {
		t.Errorf("shrinkage = %d", m.Shrinkage(6))
	}
}

func selectCfg() Config {
	c := DefaultConfig()
	c.StreamConfThreshold = 5
	c.StreamHotThreshold = 1
	c.MinShrinkage = 1
	return c
}

func optLine(pc uint64, outSlots, origSlots, conf int) *Line {
	return NewLine(pc, mkUops(outSlots, pc), &CompactMeta{
		DataInv:   []DataInvariant{{Key: pc, Value: 42, Conf: conf}},
		OrigSlots: origSlots,
	})
}

func TestSelectPrefersProfitableOptimized(t *testing.T) {
	u := New(selectCfg())
	u.Unopt.Insert(NewLine(0x1000, mkUops(10, 0x1000), nil))
	good := optLine(0x1000, 5, 10, 12)
	u.Opt.Insert(good)
	good.Hot = 3
	sel, _ := u.Select(0x1000, nil, nil)
	if !sel.FromOpt || sel.Line != good {
		t.Fatalf("selection = %+v", sel)
	}
	if sel.Score != 12+5 {
		t.Errorf("score = %d, want conf+shrinkage = 17", sel.Score)
	}
}

func TestSelectRejectsLowConfidence(t *testing.T) {
	u := New(selectCfg())
	unopt := NewLine(0x1000, mkUops(10, 0x1000), nil)
	u.Unopt.Insert(unopt)
	weak := optLine(0x1000, 5, 10, 2) // below StreamConfThreshold=5
	weak.Hot = 5
	u.Opt.Insert(weak)
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.FromOpt {
		t.Error("low-confidence line must not stream")
	}
	if sel.Line != unopt {
		t.Error("should fall back to the unoptimized version")
	}
}

func TestSelectRejectsColdLines(t *testing.T) {
	cfg := selectCfg()
	cfg.StreamHotThreshold = 4
	u := New(cfg)
	u.Unopt.Insert(NewLine(0x1000, mkUops(10, 0x1000), nil))
	l := optLine(0x1000, 5, 10, 12)
	u.Opt.Insert(l)
	// LookupAll in Select bumps hotness by 1; still below 4.
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.FromOpt {
		t.Error("cold line must not stream")
	}
}

func TestSelectChecksCurrentPredictorState(t *testing.T) {
	u := New(selectCfg())
	u.Unopt.Insert(NewLine(0x1000, mkUops(10, 0x1000), nil))
	l := optLine(0x1000, 5, 10, 12)
	l.Hot = 3
	u.Opt.Insert(l)
	// The VP no longer agrees with the stored invariant: must not stream.
	sel, _ := u.Select(0x1000, nil, func(d DataInvariant) bool { return false })
	if sel.FromOpt {
		t.Error("stale invariant must not stream (§V profitability check)")
	}
	sel, _ = u.Select(0x1000, nil, func(d DataInvariant) bool { return d.Value == 42 })
	if !sel.FromOpt {
		t.Error("matching invariant should stream")
	}
}

func TestSelectPicksHighestScoringVersion(t *testing.T) {
	u := New(selectCfg())
	u.Unopt.Insert(NewLine(0x1000, mkUops(12, 0x1000), nil))
	small := optLine(0x1000, 10, 12, 10) // score 10+2
	big := NewLine(0x1000, mkUops(6, 0x1000), &CompactMeta{
		DataInv:   []DataInvariant{{Key: 2, Value: 7, Conf: 10}},
		OrigSlots: 12, // score 10+6
	})
	small.Hot, big.Hot = 3, 3
	u.Opt.Insert(small)
	u.Opt.Insert(big)
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.Line != big {
		t.Errorf("selected %v, want the higher-compaction version", sel.Line)
	}
}

func TestSelectWithoutOptPartition(t *testing.T) {
	u := New(BaselineConfig())
	l := NewLine(0x1000, mkUops(6, 0x1000), nil)
	u.Unopt.Insert(l)
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.FromOpt || sel.Line != l {
		t.Errorf("baseline select = %+v", sel)
	}
}

func TestCapacityUops(t *testing.T) {
	// Table I: 2304 uops total for the unpartitioned baseline.
	u := New(BaselineConfig())
	if got := u.Unopt.CapacityUops(); got != 2304 {
		t.Errorf("baseline capacity = %d uops, want 2304", got)
	}
	d := New(DefaultConfig())
	if got := d.Unopt.CapacityUops() + d.Opt.CapacityUops(); got != 24*8*6+24*4*6 {
		t.Errorf("partitioned capacity = %d", got)
	}
}

func TestRemove(t *testing.T) {
	p := NewPartition(4, 8, 0)
	l := NewLine(0x1000, mkUops(6, 0x1000), nil)
	p.Insert(l)
	if !p.Remove(l) {
		t.Fatal("remove failed")
	}
	if p.Peek(0x1000) != nil {
		t.Error("line still present after Remove")
	}
	if p.Remove(l) {
		t.Error("double remove should fail")
	}
}

// --- SquashGate boundary tests (§V stream phase-out) ---

// gateLine builds a hot, confident, profitable optimized line with the
// given squash/stream history, inserted over a plain unoptimized line, so
// only the squash gate can keep it from streaming.
func gateLine(u *UopCache, squashes, streams uint64) *Line {
	u.Unopt.Insert(NewLine(0x1000, mkUops(10, 0x1000), nil))
	l := optLine(0x1000, 5, 10, 12)
	l.Hot = 5
	l.Meta.Squashes = squashes
	l.Meta.Streams = streams
	u.Opt.Insert(l)
	return l
}

func TestSquashGateEquality(t *testing.T) {
	// The gate is a strict inequality: squashes*gate == streams sits
	// exactly at the tolerated violation rate of 1/gate and still streams.
	cfg := selectCfg() // SquashGate = 20
	u := New(cfg)
	gateLine(u, 3, 3*uint64(cfg.SquashGate))
	sel, _ := u.Select(0x1000, nil, nil)
	if !sel.FromOpt {
		t.Fatalf("line at exactly rate 1/gate must stream: %+v", sel)
	}
	if sel.GateTrips != 0 {
		t.Errorf("equality counted %d gate trips", sel.GateTrips)
	}
}

func TestSquashGateOffByOne(t *testing.T) {
	// One stream fewer and the rate crosses 1/gate: phased out.
	cfg := selectCfg()
	u := New(cfg)
	gateLine(u, 3, 3*uint64(cfg.SquashGate)-1)
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.FromOpt {
		t.Fatalf("line past rate 1/gate must be phased out: %+v", sel)
	}
	if sel.Line == nil {
		t.Fatal("gated fetch must fall back to the unoptimized line")
	}
	if sel.GateTrips != 1 || sel.Candidates != 1 {
		t.Errorf("gate trips %d candidates %d, want 1/1", sel.GateTrips, sel.Candidates)
	}
}

func TestSquashGateSingleSquashFloor(t *testing.T) {
	// One squash never gates, no matter how bad the ratio — the floor of
	// two squashes keeps a single cold-start violation from killing a line.
	u := New(selectCfg())
	gateLine(u, 1, 0)
	sel, _ := u.Select(0x1000, nil, nil)
	if !sel.FromOpt {
		t.Fatalf("single squash must not gate: %+v", sel)
	}
	if sel.GateTrips != 0 {
		t.Errorf("single squash counted %d gate trips", sel.GateTrips)
	}
}

func TestSquashGateTwoSquashesGate(t *testing.T) {
	// At the floor: two squashes against zero validated streams gates.
	u := New(selectCfg())
	gateLine(u, 2, 0)
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.FromOpt {
		t.Fatalf("two squashes with no streams must gate: %+v", sel)
	}
	if sel.GateTrips != 1 {
		t.Errorf("gate trips = %d, want 1", sel.GateTrips)
	}
}

func TestSquashGateDisabledAblation(t *testing.T) {
	// SquashGate = 0 is the profitability-analysis ablation: even a
	// pathological line keeps streaming and nothing counts as a trip.
	cfg := selectCfg()
	cfg.SquashGate = 0
	u := New(cfg)
	gateLine(u, 1000, 0)
	sel, _ := u.Select(0x1000, nil, nil)
	if !sel.FromOpt {
		t.Fatalf("ablated gate must not phase out: %+v", sel)
	}
	if sel.GateTrips != 0 {
		t.Errorf("ablated gate counted %d trips", sel.GateTrips)
	}
}

func TestSelectCountsCandidates(t *testing.T) {
	// Candidates counts every optimized version considered, selected or
	// not — the journal's Select verdict surfaces both.
	u := New(selectCfg())
	u.Unopt.Insert(NewLine(0x1000, mkUops(10, 0x1000), nil))
	weak := optLine(0x1000, 5, 10, 2) // below the confidence threshold
	weak.Hot = 5
	u.Opt.Insert(weak)
	sel, _ := u.Select(0x1000, nil, nil)
	if sel.FromOpt {
		t.Fatalf("weak line streamed: %+v", sel)
	}
	if sel.Candidates != 1 || sel.GateTrips != 0 {
		t.Errorf("candidates %d trips %d, want 1/0", sel.Candidates, sel.GateTrips)
	}
}
