package uopcache

import (
	"sccsim/internal/isa"
	"sccsim/internal/snap"
	"sccsim/internal/uop"
)

// EncodeLine serializes one cache line, invariant metadata included.
// Exported because the SCC unit snapshots its pending compaction result
// — a line minted but not yet inserted into any partition.
func EncodeLine(w *snap.Writer, l *Line) {
	w.U64(l.EntryPC)
	w.U32(uint32(len(l.Uops)))
	if len(l.Uops) > 0 {
		w.Block(l.Uops)
	}
	w.Int(l.Slots)
	w.Int(l.Ways)
	w.Int(l.Hot)
	w.Bool(l.Locked)
	w.U64(l.lastTouch)
	w.Bool(l.Meta != nil)
	if l.Meta != nil {
		encodeMeta(w, l.Meta)
	}
}

// DecodeLine rebuilds a line written by EncodeLine. Returns nil once
// the reader is poisoned.
func DecodeLine(r *snap.Reader) *Line {
	l := &Line{EntryPC: r.U64()}
	if n := int(r.U32()); n > 0 {
		us := make([]uop.UOp, n)
		r.Block(us)
		l.Uops = us
	}
	l.Slots = r.Int()
	l.Ways = r.Int()
	l.Hot = r.Int()
	l.Locked = r.Bool()
	l.lastTouch = r.U64()
	if r.Bool() {
		l.Meta = decodeMeta(r)
	}
	if r.Err() != nil {
		return nil
	}
	return l
}

func encodeMeta(w *snap.Writer, m *CompactMeta) {
	w.U32(uint32(len(m.DataInv)))
	for i := range m.DataInv {
		d := &m.DataInv[i]
		w.U64(d.Key)
		w.U64(d.PC)
		w.I64(d.Value)
		w.Int(d.Conf)
		w.Int(d.Occ)
		w.Int(d.ConfAtPlant)
		w.U8(d.SrcKind)
	}
	w.U32(uint32(len(m.CtrlInv)))
	for i := range m.CtrlInv {
		c := &m.CtrlInv[i]
		w.U64(c.PC)
		w.Bool(c.Taken)
		w.U64(c.Target)
		w.Int(c.Conf)
		w.Int(c.ConfAtPlant)
	}
	w.U32(uint32(len(m.LiveOuts)))
	for i := range m.LiveOuts {
		w.U8(uint8(m.LiveOuts[i].Reg))
		w.I64(m.LiveOuts[i].Value)
	}
	w.Int(m.OrigSlots)
	w.Int(m.OrigUops)
	w.Int(m.ElimMove)
	w.Int(m.ElimFold)
	w.Int(m.ElimBranch)
	w.Int(m.ElimDead)
	w.Int(m.Propagated)
	w.U64(m.EndPC)
	w.U64(m.Squashes)
	w.U64(m.Streams)
	w.U64(m.JobID)
}

func decodeMeta(r *snap.Reader) *CompactMeta {
	m := &CompactMeta{}
	if n := int(r.U32()); n > 0 {
		m.DataInv = make([]DataInvariant, n)
		for i := range m.DataInv {
			d := &m.DataInv[i]
			d.Key = r.U64()
			d.PC = r.U64()
			d.Value = r.I64()
			d.Conf = r.Int()
			d.Occ = r.Int()
			d.ConfAtPlant = r.Int()
			d.SrcKind = r.U8()
		}
	}
	if n := int(r.U32()); n > 0 {
		m.CtrlInv = make([]CtrlInvariant, n)
		for i := range m.CtrlInv {
			c := &m.CtrlInv[i]
			c.PC = r.U64()
			c.Taken = r.Bool()
			c.Target = r.U64()
			c.Conf = r.Int()
			c.ConfAtPlant = r.Int()
		}
	}
	if n := int(r.U32()); n > 0 {
		m.LiveOuts = make([]LiveOut, n)
		for i := range m.LiveOuts {
			m.LiveOuts[i].Reg = isa.Reg(r.U8())
			m.LiveOuts[i].Value = r.I64()
		}
	}
	m.OrigSlots = r.Int()
	m.OrigUops = r.Int()
	m.ElimMove = r.Int()
	m.ElimFold = r.Int()
	m.ElimBranch = r.Int()
	m.ElimDead = r.Int()
	m.Propagated = r.Int()
	m.EndPC = r.U64()
	m.Squashes = r.U64()
	m.Streams = r.U64()
	m.JobID = r.U64()
	return m
}

// EncodeSnapshot serializes one partition: clocks, stats, and every
// resident line set by set (sets are ordered slices, so the walk is
// already deterministic). Geometry is written as a header so a restore
// against a differently configured partition fails loudly.
func (p *Partition) EncodeSnapshot(w *snap.Writer) {
	w.U32(uint32(p.NumSets))
	w.U32(uint32(p.Ways))
	w.U64(p.touch)
	w.Int(p.decayAcc)
	w.Block(&p.Stats)
	for _, set := range p.sets {
		w.U32(uint32(len(set)))
		for _, l := range set {
			EncodeLine(w, l)
		}
	}
}

// RestoreSnapshot rebuilds the partition's line sets from the snapshot.
// Lines are written into the sets directly — Insert is never called, so
// restore cannot perturb touch clocks or eviction stats.
func (p *Partition) RestoreSnapshot(r *snap.Reader) {
	if sets, ways := int(r.U32()), int(r.U32()); sets != p.NumSets || ways != p.Ways {
		r.Errorf("uopcache: snapshot partition geometry %dx%d, machine is %dx%d", sets, ways, p.NumSets, p.Ways)
		return
	}
	p.touch = r.U64()
	p.decayAcc = r.Int()
	r.Block(&p.Stats)
	for si := range p.sets {
		n := int(r.U32())
		set := make([]*Line, 0, n)
		for i := 0; i < n; i++ {
			l := DecodeLine(r)
			if l == nil {
				return
			}
			set = append(set, l)
		}
		p.sets[si] = set
	}
}

// EncodeSnapshot serializes both partitions (the optimized one only
// when configured).
func (u *UopCache) EncodeSnapshot(w *snap.Writer) {
	u.Unopt.EncodeSnapshot(w)
	w.Bool(u.Opt != nil)
	if u.Opt != nil {
		u.Opt.EncodeSnapshot(w)
	}
}

// RestoreSnapshot restores both partitions onto a freshly built cache
// of the same configuration.
func (u *UopCache) RestoreSnapshot(r *snap.Reader) {
	u.Unopt.RestoreSnapshot(r)
	hasOpt := r.Bool()
	if hasOpt != (u.Opt != nil) {
		r.Errorf("uopcache: snapshot optimized-partition presence %v, machine %v", hasOpt, u.Opt != nil)
		return
	}
	if u.Opt != nil {
		u.Opt.RestoreSnapshot(r)
	}
}
