package uopcache

import (
	"math/rand"
	"testing"
)

// TestPropertyPartitionInvariants drives a partition with random
// insert/lookup/lock/remove traffic and checks the structural invariants
// after every operation: per-set way usage never exceeds associativity,
// locked lines are never evicted, and lookups only return matching lines.
func TestPropertyPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 20; trial++ {
		sets := 1 << (1 + rng.Intn(4))
		ways := 2 + rng.Intn(7)
		p := NewPartition(sets, ways, 0)
		var locked []*Line

		check := func(op string) {
			t.Helper()
			for si, set := range p.sets {
				used := 0
				for _, l := range set {
					used += l.Ways
					if int((l.EntryPC>>5)%uint64(sets)) != si {
						t.Fatalf("%s: line@%#x in wrong set %d", op, l.EntryPC, si)
					}
				}
				if used > ways {
					t.Fatalf("%s: set %d uses %d ways > %d", op, si, used, ways)
				}
			}
			for _, l := range locked {
				if p.Peek(l.EntryPC) != l {
					t.Fatalf("%s: locked line@%#x was evicted", op, l.EntryPC)
				}
			}
		}

		for step := 0; step < 500; step++ {
			pc := uint64(0x1000 + rng.Intn(64)*32)
			switch rng.Intn(5) {
			case 0, 1:
				n := 1 + rng.Intn(18)
				p.Insert(NewLine(pc, mkUops(n, pc), nil))
				check("insert")
			case 2:
				if l := p.Lookup(pc); l != nil && l.EntryPC != pc {
					t.Fatal("lookup returned mismatched line")
				}
				check("lookup")
			case 3:
				if l := p.Peek(pc); l != nil && !l.Locked && p.Lock(l) {
					locked = append(locked, l)
				}
				check("lock")
			case 4:
				if len(locked) > 0 {
					l := locked[len(locked)-1]
					locked = locked[:len(locked)-1]
					p.Unlock(l)
				}
				check("unlock")
			}
		}
	}
}

// TestPropertyHotnessNeverNegative: random access/decay interleavings keep
// hotness counters non-negative.
func TestPropertyHotnessNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	p := NewPartition(4, 8, 2)
	for i := 0; i < 16; i++ {
		p.Insert(NewLine(uint64(0x1000+i*32), mkUops(3, uint64(0x1000+i*32)), nil))
	}
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) == 0 {
			p.Lookup(uint64(0x1000 + rng.Intn(16)*32))
		} else {
			p.Tick()
		}
		for _, l := range p.Lines() {
			if l.Hot < 0 {
				t.Fatal("negative hotness")
			}
		}
	}
}

// TestPropertySelectNeverReturnsGatedLine: no selection ever returns an
// optimized line that fails the confidence/hotness/shrinkage/squash gates.
func TestPropertySelectNeverReturnsGatedLine(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	cfg := DefaultConfig()
	u := New(cfg)
	// Populate with random lines and metadata.
	for i := 0; i < 200; i++ {
		pc := uint64(0x1000 + rng.Intn(32)*32)
		u.Unopt.Insert(NewLine(pc, mkUops(1+rng.Intn(12), pc), nil))
		meta := &CompactMeta{
			DataInv:   []DataInvariant{{Key: pc, Value: int64(rng.Intn(10)), Conf: rng.Intn(16)}},
			OrigSlots: 1 + rng.Intn(18),
			Squashes:  uint64(rng.Intn(5)),
			Streams:   uint64(rng.Intn(50)),
		}
		l := NewLine(pc, mkUops(1+rng.Intn(meta.OrigSlots), pc), meta)
		l.Hot = rng.Intn(6)
		u.Opt.Insert(l)
	}
	var scratch []*Line
	for step := 0; step < 2000; step++ {
		pc := uint64(0x1000 + rng.Intn(32)*32)
		var sel Selection
		sel, scratch = u.Select(pc, scratch, nil)
		if !sel.FromOpt {
			continue
		}
		m := sel.Line.Meta
		if m.MinConf() < cfg.StreamConfThreshold {
			t.Fatal("selected line below confidence threshold")
		}
		if m.Shrinkage(sel.Line.Slots) < cfg.MinShrinkage {
			t.Fatal("selected line below shrinkage threshold")
		}
		if cfg.SquashGate > 0 && m.Squashes >= 2 && m.Squashes*uint64(cfg.SquashGate) > m.Streams {
			t.Fatal("selected a squash-gated line")
		}
	}
}
