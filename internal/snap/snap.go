// Package snap is the deterministic binary encoding layer behind
// pipeline machine snapshots (ROADMAP #3): a versioned little-endian
// byte format with an integrity digest, plus a content-addressed
// on-disk store with the same atomic-write/self-healing contract as the
// harness result cache.
//
// The format is intentionally dumb: a fixed header (magic + format
// version), a flat payload written by per-package encoders, and a
// trailing SHA-256 over everything before it. Determinism is the whole
// point — two snapshots of identical machine state are byte-identical,
// so snapshots can be content-addressed and compared — which is why
// encoders must sort map keys before writing and why the writer offers
// no reflection-driven "encode whatever" entry point beyond Block
// (fixed-size structs only, where field order is the struct order).
package snap

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the snapshot format version. Any change to what a
// component encoder writes must bump it: a reader never attempts to
// decode a payload from another version.
const Version = 1

// magic identifies a snapshot file; 8 bytes so the header stays aligned.
var magic = [8]byte{'S', 'C', 'C', 'S', 'N', 'A', 'P', '1'}

// headerSize is magic + u32 version; digestSize the trailing SHA-256.
const (
	headerSize = 12
	digestSize = sha256.Size
)

// Writer accumulates a snapshot payload. All integers are
// little-endian; variable-length data carries a u32 length prefix.
type Writer struct {
	buf []byte
}

// NewWriter starts a snapshot with the format header already written.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magic[:]...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, Version)
	return w
}

// Finish appends the integrity digest and returns the snapshot bytes.
// The writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	sum := sha256.Sum256(w.buf)
	w.buf = append(w.buf, sum[:]...)
	return w.buf
}

// Len returns the bytes written so far (header included).
func (w *Writer) Len() int { return len(w.buf) }

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I8(v int8)    { w.buf = append(w.buf, byte(v)) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }

// Int writes a Go int as a signed 64-bit value, so the encoding does
// not depend on the platform word size.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw writes b verbatim, without a length prefix (for fixed-size blobs
// like memory pages whose size is part of the format).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U64s writes a length-prefixed slice of u64.
func (w *Writer) U64s(v []uint64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U64(x)
	}
}

// U16s writes a length-prefixed slice of u16.
func (w *Writer) U16s(v []uint16) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U16(x)
	}
}

// I8s writes a length-prefixed slice of i8.
func (w *Writer) I8s(v []int8) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.I8(x)
	}
}

// U8s writes a length-prefixed slice of u8.
func (w *Writer) U8s(v []uint8) {
	w.U32(uint32(len(v)))
	w.buf = append(w.buf, v...)
}

// Block writes a fixed-size struct (exported fields only, no pointers,
// slices or maps) in declaration order via encoding/binary. The encoded
// width is part of the snapshot format: changing such a struct requires
// a Version bump.
func (w *Writer) Block(v any) {
	var b bytes.Buffer
	if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
		// Blocks are written for known fixed-size structs; a failure is a
		// programming error in an encoder, not a runtime condition.
		panic(fmt.Sprintf("snap: unencodable block %T: %v", v, err))
	}
	w.buf = append(w.buf, b.Bytes()...)
}

// Reader decodes a snapshot produced by Writer. Errors are sticky: the
// first failure poisons the reader, later reads return zero values, and
// Err reports the first failure — so decoders read straight through and
// check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// Verify checks the framing of a snapshot without decoding the payload:
// header present, magic and version match, digest over the payload is
// intact. It is what the store uses to detect corrupt slots on load.
func Verify(data []byte) error {
	if len(data) < headerSize+digestSize {
		return fmt.Errorf("snap: truncated snapshot (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return fmt.Errorf("snap: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return fmt.Errorf("snap: format version %d, want %d", v, Version)
	}
	body, digest := data[:len(data)-digestSize], data[len(data)-digestSize:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], digest) {
		return fmt.Errorf("snap: integrity digest mismatch")
	}
	return nil
}

// NewReader verifies the snapshot framing and positions the reader at
// the start of the payload.
func NewReader(data []byte) (*Reader, error) {
	if err := Verify(data); err != nil {
		return nil, err
	}
	return &Reader{buf: data[:len(data)-digestSize], off: headerSize}, nil
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Errorf poisons the reader with a decoder-level failure (e.g. a
// geometry mismatch against the live machine's configuration).
func (r *Reader) Errorf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// take returns the next n payload bytes, or nil after poisoning the
// reader when fewer remain.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("snap: payload underrun (want %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I8() int8   { return int8(r.U8()) }
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a value written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Raw reads n verbatim bytes (the counterpart of Writer.Raw).
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Len reads a u32 length prefix and checks it against the decoder's
// expected element count; a mismatch poisons the reader. Use -1 to
// accept any length. Returns the length read.
func (r *Reader) Len(want int) int {
	n := int(r.U32())
	if want >= 0 && n != want && r.err == nil {
		r.err = fmt.Errorf("snap: length %d, decoder expects %d", n, want)
	}
	return n
}

// U64sInto fills dst from a length-prefixed slice written by U64s; the
// stored length must match len(dst).
func (r *Reader) U64sInto(dst []uint64) {
	r.Len(len(dst))
	for i := range dst {
		dst[i] = r.U64()
	}
}

// U16sInto fills dst from a slice written by U16s.
func (r *Reader) U16sInto(dst []uint16) {
	r.Len(len(dst))
	for i := range dst {
		dst[i] = r.U16()
	}
}

// I8sInto fills dst from a slice written by I8s.
func (r *Reader) I8sInto(dst []int8) {
	r.Len(len(dst))
	for i := range dst {
		dst[i] = r.I8()
	}
}

// U8sInto fills dst from a slice written by U8s.
func (r *Reader) U8sInto(dst []uint8) {
	r.Len(len(dst))
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// Block reads a fixed-size struct written by Writer.Block; v must be a
// pointer to the same struct type.
func (r *Reader) Block(v any) {
	if r.err != nil {
		return
	}
	n := binary.Size(v)
	if n < 0 {
		r.err = fmt.Errorf("snap: undecodable block %T", v)
		return
	}
	b := r.take(n)
	if b == nil {
		return
	}
	if err := binary.Read(bytes.NewReader(b), binary.LittleEndian, v); err != nil {
		r.err = fmt.Errorf("snap: decode block %T: %w", v, err)
	}
}
