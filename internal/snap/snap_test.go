package snap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(7)
	w.U16(300)
	w.U32(70_000)
	w.U64(1 << 40)
	w.I8(-3)
	w.I64(-1 << 40)
	w.Int(-42)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.25)
	w.String("warmup")
	w.Raw([]byte{1, 2, 3})
	w.U64s([]uint64{9, 8})
	w.U16s([]uint16{5})
	w.I8s([]int8{-1, 0, 1})
	w.U8s([]uint8{4, 4})
	data := w.Finish()

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U16(); got != 300 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 70_000 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I8(); got != -3 {
		t.Fatalf("I8 = %d", got)
	}
	if got := r.I64(); got != -1<<40 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool order wrong")
	}
	if got := r.F64(); got != 3.25 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.String(); got != "warmup" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	u64s := make([]uint64, 2)
	r.U64sInto(u64s)
	if u64s[0] != 9 || u64s[1] != 8 {
		t.Fatalf("U64s = %v", u64s)
	}
	u16s := make([]uint16, 1)
	r.U16sInto(u16s)
	i8s := make([]int8, 3)
	r.I8sInto(i8s)
	u8s := make([]uint8, 2)
	r.U8sInto(u8s)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderPoisonsOnUnderrunAndLengthMismatch(t *testing.T) {
	w := NewWriter()
	w.U64s([]uint64{1, 2, 3})
	data := w.Finish()

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 2) // wrong expected length
	r.U64sInto(dst)
	if r.Err() == nil {
		t.Fatal("length mismatch not reported")
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("poisoned reader returned %d, want zero value", got)
	}

	r2, err := NewReader(NewWriter().Finish())
	if err != nil {
		t.Fatal(err)
	}
	r2.U64() // empty payload
	if r2.Err() == nil {
		t.Fatal("underrun not reported")
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	w := NewWriter()
	w.U64(123)
	data := w.Finish()
	if err := Verify(data); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-1] },
		"bit flip":  func(b []byte) []byte { c := append([]byte(nil), b...); c[headerSize] ^= 1; return c },
		"bad magic": func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"version":   func(b []byte) []byte { c := append([]byte(nil), b...); c[8] = 99; return c },
		"tiny":      func([]byte) []byte { return []byte{1, 2} },
	} {
		if err := Verify(mutate(data)); err == nil {
			t.Errorf("%s snapshot passed Verify", name)
		}
	}
}

func TestStoreSaveLoadAndSelfHealing(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 0)
	key := Key("mcf", "0123456789abcdef", 10_000, 3)
	if key == "" {
		t.Fatal("key rejected")
	}

	w := NewWriter()
	w.U64(7)
	data := w.Finish()
	if written, _ := s.Save(key, data); !written {
		t.Fatal("save failed")
	}
	if got := s.Load(key); !bytes.Equal(got, data) {
		t.Fatal("load returned different bytes")
	}

	// Corrupt the slot on disk: the next load must miss AND delete it.
	path := filepath.Join(dir, key+".snap")
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s.Load(key); got != nil {
		t.Fatal("corrupt slot returned data")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt slot not deleted (self-healing broken)")
	}
	// And the store recovers by rewriting.
	if written, _ := s.Save(key, data); !written {
		t.Fatal("re-save after corruption failed")
	}
	if got := s.Load(key); !bytes.Equal(got, data) {
		t.Fatal("reload after heal failed")
	}
}

func TestStoreEvictsLRUPastCap(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter()
	w.Raw(make([]byte, 1000))
	data := w.Finish()

	s := NewStore(dir, int64(2*len(data)+10))
	hash := "0123456789abcdef"
	for i := 1; i <= 2; i++ {
		if written, evicted := s.Save(Key("w", hash, 10_000, i), data); !written || evicted != 0 {
			t.Fatalf("slot %d: written=%v evicted=%d", i, written, evicted)
		}
	}
	// Age slot 1 so it is the LRU victim regardless of filesystem mtime
	// granularity, then exceed the cap.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, Key("w", hash, 10_000, 1)+".snap"), old, old)
	if written, evicted := s.Save(Key("w", hash, 10_000, 3), data); !written || evicted != 1 {
		t.Fatalf("third save: written=%v evicted=%d, want eviction of 1", written, evicted)
	}
	if s.Load(Key("w", hash, 10_000, 1)) != nil {
		t.Fatal("LRU slot survived eviction")
	}
	if s.Load(Key("w", hash, 10_000, 3)) == nil {
		t.Fatal("just-written slot was evicted")
	}
}

func TestStoreNilAndBadKeysAreSafeMisses(t *testing.T) {
	var s *Store // NewStore("") contract
	if s2 := NewStore("", 0); s2 != nil {
		t.Fatal("empty dir should yield a nil store")
	}
	if s.Load("k") != nil {
		t.Fatal("nil store load returned data")
	}
	if written, _ := s.Save("k", []byte{1}); written {
		t.Fatal("nil store save reported success")
	}
	if Key("a/b", "0123456789abcdef", 10_000, 1) != "" {
		t.Fatal("separator workload accepted")
	}
	if Key("w", "short", 10_000, 1) != "" {
		t.Fatal("short hash accepted")
	}
	real := NewStore(t.TempDir(), 0)
	if written, _ := real.Save("../escape", []byte{1}); written {
		t.Fatal("path-escaping key accepted")
	}
}

func TestKeySeparatesIntervalLengths(t *testing.T) {
	hash := "0123456789abcdef"
	a := Key("w", hash, 10_000, 2)
	b := Key("w", hash, 20_000, 2)
	if a == "" || b == "" {
		t.Fatal("key rejected")
	}
	if a == b {
		t.Fatal("different interval lengths share a slot key")
	}
}
