package snap

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is the content-addressed on-disk snapshot store that sits
// beside the harness result cache. Slots are keyed by
// (workload, warmup-hash, interval length, interval boundary) — the
// caller builds the key with Key — and hold one Writer-framed snapshot
// each. The store
// follows the result cache's durability contract: writes are atomic
// (temp file + fsync + rename), a slot that fails framing verification
// on load is deleted so one torn write cannot poison later sweeps, and
// every failure degrades to a miss — the store is an accelerator,
// never a correctness dependency (the caller re-runs detailed warmup
// on any miss).
type Store struct {
	dir      string
	maxBytes int64 // 0 = unbounded

	// mu serializes eviction scans; loads and saves of distinct keys are
	// otherwise free to race (atomic renames keep slots whole).
	mu sync.Mutex
}

// ext is the slot filename extension; eviction only ever touches these.
const ext = ".snap"

// NewStore opens (creating if needed) a snapshot store in dir, capped
// at maxBytes of slot data (0 = unbounded). A nil store is returned
// when dir is empty, and every method on a nil store is a safe no-op
// miss — callers hold snapshots in memory for the current sweep only.
func NewStore(dir string, maxBytes int64) *Store {
	if dir == "" {
		return nil
	}
	return &Store{dir: dir, maxBytes: maxBytes}
}

// Key builds the canonical slot key for a workload's warmup state at an
// interval boundary. The warmup hash sub-addresses the configuration
// (every knob except the work budget), so sweep configs that share it
// resolve to the same slots. The interval length is part of the key
// because the machine state at boundary b is the state after
// b*intervalUops committed uops with a stop at every multiple of
// intervalUops — runs sweeping different interval lengths (e.g.
// budget-derived ones) must never share slots. Returns "" when the
// workload name cannot be a safe file stem (mirrors the result cache's
// guard).
func Key(workload, warmupHash string, intervalUops uint64, boundary int) string {
	if strings.ContainsAny(workload, "/\\") || len(warmupHash) < 12 {
		return ""
	}
	return fmt.Sprintf("%s-%s-i%d-b%d", workload, warmupHash[:12], intervalUops, boundary)
}

func (s *Store) path(key string) string {
	if s == nil || key == "" || strings.ContainsAny(key, "/\\") {
		return ""
	}
	return filepath.Join(s.dir, key+ext)
}

// Load returns the verified snapshot stored under key, or nil on any
// miss. A slot that exists but fails framing verification (truncated
// write, bit rot, format-version skew) is deleted — self-healing, so
// the next warmup pass rewrites it. A hit refreshes the slot's mtime,
// which is the LRU clock eviction orders by.
func (s *Store) Load(key string) []byte {
	path := s.path(key)
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	if err := Verify(data); err != nil {
		os.Remove(path)
		return nil
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	return data
}

// Save stores data under key atomically and then enforces the size
// cap, evicting least-recently-used slots. It reports whether the slot
// was written and how many slots eviction removed; failures are
// swallowed (written=false) like the result cache's.
func (s *Store) Save(key string, data []byte) (written bool, evicted int) {
	path := s.path(key)
	if path == "" {
		return false, 0
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return false, 0
	}
	tmp, err := os.CreateTemp(s.dir, ".snap-*")
	if err != nil {
		return false, 0
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false, 0
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false, 0
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return false, 0
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false, 0
	}
	return true, s.evict(path)
}

// evict removes least-recently-used slots until the store fits under
// maxBytes again. The just-written slot is exempt: a snapshot must
// survive at least until its own sweep reads it back, even when it
// alone exceeds the cap.
func (s *Store) evict(justWrote string) int {
	if s.maxBytes <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	type slot struct {
		path  string
		size  int64
		mtime time.Time
	}
	var slots []slot
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ext) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		total += info.Size()
		slots = append(slots, slot{path: filepath.Join(s.dir, e.Name()), size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].mtime.Before(slots[j].mtime) })
	n := 0
	for _, sl := range slots {
		if total <= s.maxBytes {
			break
		}
		if sl.path == justWrote {
			continue
		}
		if err := os.Remove(sl.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			continue
		}
		total -= sl.size
		n++
	}
	return n
}
