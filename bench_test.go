package sccsim

// One benchmark per table and figure of the paper's evaluation (§VII), plus
// the ablation benches DESIGN.md calls out. Each bench regenerates its
// artifact on a reduced interval/subset so `go test -bench=.` stays
// laptop-scale; `cmd/sccbench` runs the full-scale versions. Custom metrics
// (reduction %, speedup, energy saving) are attached via b.ReportMetric so
// bench output doubles as a results table.

import (
	"io"
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/stats"
	"sccsim/internal/workloads"
)

// benchOpts returns a reduced-scale option set: a class-representative
// workload subset at a short interval.
func benchOpts(b *testing.B, names ...string) Options {
	b.Helper()
	var ws []workloads.Workload
	for _, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			b.Fatalf("unknown workload %q", n)
		}
		ws = append(ws, w)
	}
	if ws == nil {
		ws = workloads.All()
	}
	return Options{MaxUops: 25_000, Workloads: ws}
}

var benchSubset = []string{"xalancbmk", "perlbench", "mcf", "lbm", "exchange2"}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table1(io.Discard)
		Overheads(io.Discard)
	}
}

func BenchmarkFig6Compaction(b *testing.B) {
	opts := benchOpts(b, benchSubset...)
	var f *harness.Fig6
	var err error
	for i := 0; i < b.N; i++ {
		f, err = Figure6(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.AvgReduction()*100, "reduction-%")
	b.ReportMetric(f.AvgSpeedup(), "speedup-x")
}

func BenchmarkFig7FetchSources(b *testing.B) {
	opts := benchOpts(b, "xalancbmk", "perlbench", "freqmine")
	var f *harness.Fig7
	var err error
	for i := 0; i < b.N; i++ {
		f, err = Figure7(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean(f.SCCOpt)*100, "opt-share-%")
}

func BenchmarkFig8Energy(b *testing.B) {
	opts := benchOpts(b, benchSubset...)
	var f *harness.Fig8
	var err error
	for i := 0; i < b.N; i++ {
		f, err = Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.AvgSavings()*100, "energy-saving-%")
}

func BenchmarkFig9ValuePredictors(b *testing.B) {
	opts := benchOpts(b, "xalancbmk", "gcc", "freqmine")
	var f *harness.Fig9
	var err error
	for i := 0; i < b.N; i++ {
		f, err = Figure9(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean(f.Reduction[0])*100, "h3vp-reduction-%")
	b.ReportMetric(stats.Mean(f.Reduction[1])*100, "eves-reduction-%")
}

func BenchmarkFig10PartitionSizes(b *testing.B) {
	opts := benchOpts(b, "xalancbmk", "perlbench", "vips")
	var f *harness.Fig10
	var err error
	for i := 0; i < b.N; i++ {
		f, err = Figure10(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.BestSplit()), "best-opt-sets")
}

func BenchmarkFig11ConstantWidths(b *testing.B) {
	opts := benchOpts(b, "xalancbmk", "exchange2", "vips")
	var f *harness.Fig11
	var err error
	for i := 0; i < b.N; i++ {
		f, err = Figure11(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Figure 11's claim: 16-bit retains most of the 64-bit benefit.
	b.ReportMetric(stats.Mean(f.Reduction[0])*100, "red-64b-%")
	b.ReportMetric(stats.Mean(f.Reduction[2])*100, "red-16b-%")
	b.ReportMetric(stats.Mean(f.Reduction[3])*100, "red-8b-%")
}

func BenchmarkOverheadModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Overheads(io.Discard)
	}
}

// --- single-workload microbenches: simulator throughput per class ---

func benchWorkload(b *testing.B, name string, cfg pipeline.Config) {
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	opts := Options{MaxUops: 25_000}
	var res *RunResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Run(cfg, w, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Stats.IPC(), "ipc")
	b.ReportMetric(res.Stats.DynamicUopReduction()*100, "reduction-%")
}

// BenchmarkSamplerOverhead measures the cost of the observability layer's
// interval sampling against the same run with sampling disabled (the
// default). The hook is a nil-check per commit group when off and a
// Stats copy per 10k committed uops when on; the acceptance bar for the
// obs layer is ≤5% overhead.
func BenchmarkSamplerOverhead(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	for _, every := range []uint64{0, 10_000} {
		nm := "sampling-off"
		if every > 0 {
			nm = "sampling-10k"
		}
		b.Run(nm, func(b *testing.B) {
			opts := Options{MaxUops: 25_000, SampleEvery: every}
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(SCCConfig(LevelFull), w, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Samples)), "intervals")
		})
	}
}

// BenchmarkPipeTracerOverhead measures the per-uop lifecycle tracer
// against the same run with tracing disabled (the default). Off, the
// tracer costs one nil-check per micro-op; on, it mints a UopTrace per
// fetched micro-op and copies it into the ring at retire.
func BenchmarkPipeTracerOverhead(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	for _, traced := range []bool{false, true} {
		nm := "tracing-off"
		if traced {
			nm = "tracing-on"
		}
		b.Run(nm, func(b *testing.B) {
			var tracer *obs.PipeTracer
			opts := Options{MaxUops: 25_000}
			if traced {
				tracer = obs.NewPipeTracer(0)
				opts.Observe = tracer.Attach
			}
			for i := 0; i < b.N; i++ {
				if _, err := Run(SCCConfig(LevelFull), w, opts); err != nil {
					b.Fatal(err)
				}
			}
			if tracer != nil {
				b.ReportMetric(float64(tracer.Total())/float64(b.N), "uops-traced")
			}
		})
	}
}

// BenchmarkJournalOverhead measures the SCC journal against the same run
// with the journal detached (the default). Off, every hook site is a
// nil-check and Compact collects no remarks — the disabled path must not
// allocate per micro-op; on, the unit collects remarks and the aggregator
// folds the event stream.
func BenchmarkJournalOverhead(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	for _, journaled := range []bool{false, true} {
		nm := "journal-off"
		if journaled {
			nm = "journal-on"
		}
		b.Run(nm, func(b *testing.B) {
			opts := Options{MaxUops: 25_000, Journal: journaled}
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(SCCConfig(LevelFull), w, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			if journaled {
				b.ReportMetric(float64(res.OptReport.Lines), "lines")
			}
		})
	}
}

func BenchmarkSimBaselineXalancbmk(b *testing.B) { benchWorkload(b, "xalancbmk", BaselineConfig()) }
func BenchmarkSimSCCXalancbmk(b *testing.B)      { benchWorkload(b, "xalancbmk", SCCConfig(LevelFull)) }
func BenchmarkSimSCCMcf(b *testing.B)            { benchWorkload(b, "mcf", SCCConfig(LevelFull)) }
func BenchmarkSimSCCLbm(b *testing.B)            { benchWorkload(b, "lbm", SCCConfig(LevelFull)) }

// BenchmarkMachineRun is the single-run hot-path headline: one machine,
// one workload, simulated uops/sec as the custom metric — the number the
// throughput-overhaul work optimizes. Baseline and full SCC sub-benches
// cover both fetch paths (decode/unopt vs the compacted-stream dry-run
// machinery).
func BenchmarkMachineRun(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	for _, cfg := range []struct {
		name string
		cfg  pipeline.Config
	}{
		{"baseline", BaselineConfig()},
		{"scc-full", SCCConfig(LevelFull)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := Options{MaxUops: 25_000}
			var res *RunResult
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg.cfg, w, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.CommittedUops)*float64(b.N)/b.Elapsed().Seconds(), "uops/sec")
		})
	}
}

// BenchmarkShardedSimPoint measures the sharded SimPoint estimator's wall
// scaling: the same representative set measured with functional
// fast-forward shards at 1 and 4 workers. The per-op time ratio between
// the sub-benches is the wall speedup the sharding buys.
func BenchmarkShardedSimPoint(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	for _, workers := range []int{1, 4} {
		b.Run(name("workers", workers), func(b *testing.B) {
			opts := Options{MaxUops: 200_000, Parallel: workers}
			var r *harness.SimPointResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = harness.SimPointEstimateSharded(
					SCCConfig(LevelFull), w, 25_000, 6, harness.WarmupFunctional, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.WeightedIPC, "weighted-ipc")
			b.ReportMetric(float64(len(r.Points)), "shards")
		})
	}
}

// BenchmarkSnapshotRoundTrip measures the checkpoint codec itself —
// Snapshot (encode + integrity digest) plus NewMachineFromSnapshot
// (verify + decode + machine rebuild) — on a machine warmed through one
// reduced SimPoint interval, the state a sweep warmup actually persists.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	cfg := SCCConfig(LevelFull)
	m, err := pipeline.New(cfg, w.Program())
	if err != nil {
		b.Fatal(err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	m.Cfg.MaxUops = 25_000
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	var data []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err = m.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pipeline.NewMachineFromSnapshot(cfg, w.Program(), data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "snapshot-bytes")
}

// BenchmarkSweepWarmupAmortized is the PR's headline number: the same
// detailed SimPoint estimate through the sharded path (every shard
// re-pays its detailed warmup prefix) and the snapshot path (the warmup
// walked once into the store, every shard restored from it). The per-op
// time ratio between the sub-benches is the warmup amortization; both
// produce byte-identical results (TestSnapshotSimPointMatchesSerial).
func BenchmarkSweepWarmupAmortized(b *testing.B) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		b.Fatal("unknown workload")
	}
	const interval, k = 25_000, 6
	opts := Options{MaxUops: 200_000, Parallel: 4}
	b.Run("sharded-detailed", func(b *testing.B) {
		var r *harness.SimPointResult
		var err error
		for i := 0; i < b.N; i++ {
			r, err = harness.SimPointEstimateSharded(
				SCCConfig(LevelFull), w, interval, k, harness.WarmupDetailed, opts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.WeightedIPC, "weighted-ipc")
	})
	b.Run("snapshot-restored", func(b *testing.B) {
		o := opts
		o.SnapshotDir = b.TempDir()
		var r *harness.SimPointResult
		var err error
		for i := 0; i < b.N; i++ {
			r, err = harness.SimPointEstimateSnapshot(
				SCCConfig(LevelFull), w, interval, k, o)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.WeightedIPC, "weighted-ipc")
	})
}

// --- ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationHotnessDecay sweeps the optimized-partition hotness
// decay period around the paper's chosen 3 cycles.
func BenchmarkAblationHotnessDecay(b *testing.B) {
	w, _ := workloads.ByName("xalancbmk")
	for _, decay := range []int{1, 3, 28} {
		b.Run(name("decay", decay), func(b *testing.B) {
			cfg := SCCConfig(LevelFull)
			cfg.UC.OptDecay = decay
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg, w, Options{MaxUops: 25_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationConfidenceThreshold compares the artifact's SCC
// threshold (5) with the conservative baseline threshold (15).
func BenchmarkAblationConfidenceThreshold(b *testing.B) {
	w, _ := workloads.ByName("perlbench")
	for _, thr := range []int{5, 10, 15} {
		b.Run(name("conf", thr), func(b *testing.B) {
			cfg := SCCConfig(LevelFull)
			cfg.SCC.VPConfThreshold = thr
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg, w, Options{MaxUops: 25_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Stats.DynamicUopReduction()*100, "reduction-%")
			b.ReportMetric(float64(res.Stats.InvariantViolations), "violations")
		})
	}
}

// BenchmarkAblationQueueSizes sweeps the compaction request queue depth
// (§III: 6 entries suffice) and the write-buffer capacity.
func BenchmarkAblationQueueSizes(b *testing.B) {
	w, _ := workloads.ByName("xalancbmk")
	for _, depth := range []int{1, 6, 16} {
		b.Run(name("reqq", depth), func(b *testing.B) {
			cfg := SCCConfig(LevelFull)
			cfg.SCC.RequestQueueDepth = depth
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg, w, Options{MaxUops: 25_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Stats.DynamicUopReduction()*100, "reduction-%")
		})
	}
	for _, slots := range []int{6, 12, 18} {
		b.Run(name("wbuf", slots), func(b *testing.B) {
			cfg := SCCConfig(LevelFull)
			cfg.SCC.WriteBufferSlots = slots
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg, w, Options{MaxUops: 25_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Stats.DynamicUopReduction()*100, "reduction-%")
		})
	}
}

// BenchmarkAblationProfitability disables the §V profitability machinery
// (squash-rate phase-out gate + VP-state match) to quantify its value.
func BenchmarkAblationProfitability(b *testing.B) {
	w, _ := workloads.ByName("gcc")
	for _, gated := range []bool{true, false} {
		nm := "profitability-on"
		if !gated {
			nm = "profitability-off"
		}
		b.Run(nm, func(b *testing.B) {
			cfg := SCCConfig(LevelFull)
			if !gated {
				cfg.UC.SquashGate = 0
			}
			var res *RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Run(cfg, w, Options{MaxUops: 25_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Cycles), "cycles")
			b.ReportMetric(res.Stats.SquashOverhead()*100, "squash-%")
		})
	}
}

// BenchmarkExtensionFPFold measures the paper's invited future-work
// extension (FP compaction) on the FP-dominated kernels the baseline SCC
// cannot touch.
func BenchmarkExtensionFPFold(b *testing.B) {
	for _, wn := range []string{"lbm", "swaptions"} {
		w, _ := workloads.ByName(wn)
		for _, ext := range []bool{false, true} {
			nm := wn + "/paper-config"
			if ext {
				nm = wn + "/fp-extension"
			}
			b.Run(nm, func(b *testing.B) {
				cfg := SCCConfig(LevelFull)
				cfg.SCC.EnableFPFold = ext
				cfg.SCC.EnableComplexFold = ext
				var res *RunResult
				var err error
				for i := 0; i < b.N; i++ {
					res, err = Run(cfg, w, Options{MaxUops: 25_000})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Stats.DynamicUopReduction()*100, "reduction-%")
				b.ReportMetric(float64(res.Stats.Cycles), "cycles")
			})
		}
	}
}

func name(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
