package sccsim

// CLI flag-validation tests: bad flag values must be rejected up front
// with a usage error (exit 2) and a pointed stderr message instead of
// silently coercing (the runner treats negative Parallel as GOMAXPROCS,
// which would mask a scripting typo like `-parallel -8`).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIRejectsNegativeParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		tool string
		args []string
	}{
		// Each invocation would be a real (if tiny) run when valid, so a
		// pass proves validation fires before any simulation starts.
		{"sccsim", []string{"-parallel", "-1", "-workload", "mcf", "-max-uops", "1000"}},
		{"sccbench", []string{"-parallel", "-1", "-experiment", "table1"}},
		{"scctrace", []string{"-parallel", "-1", "-workload", "mcf", "-max-uops", "1000"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.tool, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", append([]string{"run", "./cmd/" + tc.tool}, tc.args...)...).CombinedOutput()
			if err == nil {
				t.Fatalf("%s accepted -parallel -1:\n%s", tc.tool, out)
			}
			// go run relays the child's status as "exit status N" on
			// stderr while exiting 1 itself, so assert on the relayed code.
			if !strings.Contains(string(out), "exit status 2") {
				t.Errorf("%s did not exit with usage error 2:\n%s", tc.tool, out)
			}
			if !strings.Contains(string(out), "-parallel must be >= 0") {
				t.Errorf("%s stderr missing the -parallel message:\n%s", tc.tool, out)
			}
		})
	}
}

// TestCLIRejectsInvalidLogLevel pins the -log-level vocabulary on every
// command: an unknown level is a usage error (exit 2) naming the valid
// set, fired before any work starts.
func TestCLIRejectsInvalidLogLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, tool := range []string{"sccsim", "sccbench", "scctrace", "sccdiff", "sccserve"} {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./cmd/"+tool, "-log-level", "loud").CombinedOutput()
			if err == nil {
				t.Fatalf("%s accepted -log-level loud:\n%s", tool, out)
			}
			if !strings.Contains(string(out), "exit status 2") {
				t.Errorf("%s did not exit with usage error 2:\n%s", tool, out)
			}
			if !strings.Contains(string(out), "unknown log level") ||
				!strings.Contains(string(out), "debug|info|warn|error") {
				t.Errorf("%s stderr does not name the valid log levels:\n%s", tool, out)
			}
		})
	}
}

// TestCLIRejectsNonPositiveFlightCapacity: a zero or negative flight
// recorder ring would drop every event silently (the SIGQUIT dump and
// /debug/flight would always be empty), so sccserve rejects it up front
// as a usage error instead of serving with a dead recorder.
func TestCLIRejectsNonPositiveFlightCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, bad := range []string{"0", "-4"} {
		bad := bad
		t.Run(bad, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./cmd/sccserve",
				"-flight-capacity", bad, "-addr", "127.0.0.1:0").CombinedOutput()
			if err == nil {
				t.Fatalf("sccserve accepted -flight-capacity %s:\n%s", bad, out)
			}
			if !strings.Contains(string(out), "exit status 2") {
				t.Errorf("sccserve did not exit with usage error 2:\n%s", out)
			}
			if !strings.Contains(string(out), "-flight-capacity must be >= 1") {
				t.Errorf("sccserve stderr missing the -flight-capacity message:\n%s", out)
			}
		})
	}
}

// TestCLIRejectsBadSnapshotFlags pins the snapshot-store flag
// validation on every command that carries it: a negative size cap and
// a -snapshot-dir that collides with an existing regular file are both
// usage errors (exit 2) fired before any simulation or serving starts —
// the store would otherwise fail on first save, deep inside a sweep.
func TestCLIRejectsBadSnapshotFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	notADir := filepath.Join(t.TempDir(), "slotfile")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tool string
		args []string
		msg  string
	}{
		{"sccbench/negative-cap", "sccbench",
			[]string{"-snapshot-max-bytes", "-1", "-experiment", "simpoint-snapshot"},
			"-snapshot-max-bytes must be >= 0"},
		{"sccbench/dir-is-file", "sccbench",
			[]string{"-snapshot-dir", notADir, "-experiment", "simpoint-snapshot"},
			"-snapshot-dir " + notADir + " exists and is not a directory"},
		{"sccsim/negative-cap", "sccsim",
			[]string{"-snapshot-max-bytes", "-1", "-workload", "mcf", "-max-uops", "1000"},
			"-snapshot-max-bytes must be >= 0"},
		{"sccsim/dir-is-file", "sccsim",
			[]string{"-snapshot-dir", notADir, "-workload", "mcf", "-max-uops", "1000"},
			"-snapshot-dir " + notADir + " exists and is not a directory"},
		{"sccserve/negative-cap", "sccserve",
			[]string{"-snapshot-max-bytes", "-1", "-addr", "127.0.0.1:0"},
			"-snapshot-max-bytes must be >= 0"},
		{"sccserve/dir-is-file", "sccserve",
			[]string{"-snapshot-dir", notADir, "-addr", "127.0.0.1:0"},
			"-snapshot-dir " + notADir + " exists and is not a directory"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", append([]string{"run", "./cmd/" + tc.tool}, tc.args...)...).CombinedOutput()
			if err == nil {
				t.Fatalf("%s accepted bad snapshot flags:\n%s", tc.tool, out)
			}
			if !strings.Contains(string(out), "exit status 2") {
				t.Errorf("%s did not exit with usage error 2:\n%s", tc.tool, out)
			}
			if !strings.Contains(string(out), tc.msg) {
				t.Errorf("%s stderr missing %q:\n%s", tc.tool, tc.msg, out)
			}
		})
	}
}

// TestCLIRejectsInvalidLogFormat does the same for -log-format.
func TestCLIRejectsInvalidLogFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "run", "./cmd/sccsim", "-log-format", "xml").CombinedOutput()
	if err == nil {
		t.Fatalf("sccsim accepted -log-format xml:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown log format") ||
		!strings.Contains(string(out), "text|json") {
		t.Errorf("sccsim stderr does not name the valid log formats:\n%s", out)
	}
}
